"""Inspect what Mulini generates for one experiment point (Section II).

Prints the bundle manifest for a 1-2-2 RUBiS experiment, one full
generated script, one vendor configuration file, and the SmartFrog
rendering of the same point — the artifacts behind the paper's
Tables 3-5.

Run:  python examples/inspect_generated_artifacts.py
"""

from repro import Mulini, Topology, build_experiment
from repro.spec.mof import load_resource_model, render_resource_mof


def main():
    mof = render_resource_mof("rubis", "emulab")
    print("=== Resource model (CIM/MOF input) ===")
    print(mof)

    experiment, tbl = build_experiment(
        name="inspection", benchmark="rubis", platform="emulab",
        topologies=[Topology(1, 2, 2)], workloads=(500,),
        write_ratios=(0.15,),
    )
    print("=== Experiment specification (TBL input) ===")
    print(tbl)

    mulini = Mulini(load_resource_model(mof))
    bundle = mulini.generate(experiment, Topology(1, 2, 2), 500, 0.15)

    print("=== Bundle manifest ===")
    print(bundle.manifest())

    print("=== One generated script: TOMCAT1_install.sh ===")
    print(bundle.content("scripts/TOMCAT1_install.sh"))

    print("=== One generated config: APACHE1_workers2.properties ===")
    print(bundle.content("config/APACHE1_workers2.properties"))

    print("=== The same point, SmartFrog backend ===")
    smartfrog = mulini.generate(experiment, Topology(1, 2, 2), 500, 0.15,
                                backend="smartfrog")
    print(smartfrog)

    print(f"Totals: {bundle.file_count()} files, "
          f"{bundle.script_line_total()} script lines, "
          f"{bundle.config_line_total()} config lines — for ONE of the "
          f"hundreds of points in a sweep (Table 3's scale).")


if __name__ == "__main__":
    main()
