"""Shared test fixtures and factories."""

from repro.deploy.state import (
    AppServer,
    DatabaseBackend,
    DbController,
    DeployedSystem,
    MonitorProcess,
    WebServer,
)
from repro.generator.workload import DriverParameters
from repro.spec import get_package, get_platform
from repro.vcluster import VirtualHost


def make_driver(benchmark="rubis", users=100, write_ratio=0.15,
                think_time=7.0, timeout=8.0, warmup=10.0, run=60.0,
                cooldown=10.0, seed=42, mix=None, topology_label="1-1-1",
                target_host="node-1", target_port=80):
    """A DriverParameters object as the deployed config would yield."""
    if mix is None:
        if benchmark == "rubis":
            mix = "browsing" if write_ratio == 0 else "bidding"
        else:
            mix = "readonly" if write_ratio == 0 else "submission"
    return DriverParameters(
        benchmark=benchmark, mix=mix, users=users, write_ratio=write_ratio,
        think_time=think_time, timeout=timeout, warmup=warmup, run=run,
        cooldown=cooldown, seed=seed, topology_label=topology_label,
        target_host=target_host, target_port=target_port,
        log_path="/var/log/driver/requests.log",
    )


def make_system(webs=1, apps=1, dbs=1, driver=None, app_server="jonas",
                platform="emulab", db_node_type=None, monitor_interval=1.0):
    """A synthetic DeployedSystem with real VirtualHost objects.

    Bypasses script generation/deployment for tests that exercise the
    simulation layer alone; the full pipeline is covered by
    test_deploy.py and test_experiments.py.
    """
    plat = get_platform(platform)
    driver = driver or make_driver()
    counter = [0]

    def host(node_type_name=None):
        counter[0] += 1
        node_type = plat.node_type(node_type_name)
        return VirtualHost(f"node-{counter[0]}", node_type)

    app_package = get_package(app_server)
    web_servers = []
    app_servers = []
    for _ in range(apps):
        app_servers.append(AppServer(
            host=host(), servlet_port=8009, servlet_threads=300,
            server_name=app_server, worker_pool=app_package.worker_pool,
            efficiency=app_package.efficiency,
        ))
    db_backends = []
    backend_specs = []
    for index in range(dbs):
        backend_host = host(db_node_type)
        db_backends.append(DatabaseBackend(
            host=backend_host, port=3306, max_connections=500,
        ))
        backend_specs.append({"name": f"db{index + 1}",
                              "host": backend_host.name, "port": 3306})
    controller = DbController(host=db_backends[0].host, port=25322,
                              database=driver.benchmark,
                              backend_specs=backend_specs)
    for _ in range(webs):
        web_servers.append(WebServer(
            host=host(), port=80, max_clients=512,
            workers=[{"name": f"app{i + 1}",
                      "host": server.host.name, "port": 8009}
                     for i, server in enumerate(app_servers)],
        ))
    client_host = host()
    monitors = [
        MonitorProcess(host=h, interval=monitor_interval,
                       output_path=f"/var/log/sysmon/{h.name}.dat",
                       metrics=("cpu", "memory", "disk", "network"))
        for h in ([w.host for w in web_servers]
                  + [a.host for a in app_servers]
                  + [d.host for d in db_backends]
                  + [client_host])
    ]
    return DeployedSystem(
        driver=driver,
        client_host=client_host,
        web_servers=web_servers,
        app_servers=app_servers,
        controller=controller,
        db_backends=db_backends,
        monitors=monitors,
    )
