"""Tests for the command-line interface and the export module."""

import json

import pytest

from repro.cli import main
from repro.errors import ResultsError
from repro.results.export import from_csv, to_csv, to_json
from tests.test_results import make_result

SMALL_TBL = """
benchmark rubis;
platform emulab;
experiment "cli-test" {
    topology 1-1-1;
    workload 100, 200;
    write_ratio 15%;
    trial { warmup 14s; run 15s; cooldown 3s; }
}
"""


@pytest.fixture
def tbl_file(tmp_path):
    path = tmp_path / "spec.tbl"
    path.write_text(SMALL_TBL)
    return path


class TestExport:
    def test_csv_roundtrip(self):
        results = [make_result(workload=100), make_result(workload=200)]
        text = to_csv(results)
        rows = from_csv(text)
        assert len(rows) == 2
        assert rows[0]["workload"] == 100
        assert rows[0]["topology"] == "1-1-1"
        assert rows[0]["app_cpu_percent"] == pytest.approx(50.0)

    def test_json_includes_host_cpu(self):
        payload = json.loads(to_json([make_result()]))
        assert payload[0]["host_cpu"]["node-1"] == 50.0
        assert payload[0]["tier_of_host"]["node-2"] == "db"

    def test_empty_export_rejected(self):
        with pytest.raises(ResultsError):
            to_csv([])

    def test_from_csv_rejects_garbage(self):
        with pytest.raises(ResultsError):
            from_csv("a,b\n1,2\n")


class TestCli:
    def test_validate(self, tbl_file, capsys):
        assert main(["validate", "--tbl", str(tbl_file)]) == 0
        out = capsys.readouterr().out
        assert "ok:" in out
        assert "cli-test" in out

    def test_validate_bad_spec(self, tmp_path, capsys):
        bad = tmp_path / "bad.tbl"
        bad.write_text("benchmark rubis;\nexperiment oops\n")
        assert main(["validate", "--tbl", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_generate_bundle_to_disk(self, tbl_file, tmp_path, capsys):
        out_dir = tmp_path / "bundle"
        status = main([
            "generate", "--tbl", str(tbl_file),
            "--experiment", "cli-test", "--out", str(out_dir),
        ])
        assert status == 0
        roots = list(out_dir.iterdir())
        assert len(roots) == 1
        root = roots[0]
        assert (root / "run.sh").is_file()
        assert (root / "manifest.txt").is_file()
        assert (root / "scripts" / "TOMCAT1_install.sh").is_file()
        assert (root / "config" / "driver.properties").is_file()

    def test_generate_with_point_override(self, tbl_file, tmp_path):
        out_dir = tmp_path / "bundle"
        status = main([
            "generate", "--tbl", str(tbl_file),
            "--experiment", "cli-test", "--topology", "1-2-1",
            "--workload", "500", "--out", str(out_dir),
        ])
        assert status == 0
        root = next(out_dir.iterdir())
        assert "1-2-1" in root.name and "u500" in root.name

    def test_generate_smartfrog(self, tbl_file, tmp_path):
        out_dir = tmp_path / "sf"
        status = main([
            "generate", "--tbl", str(tbl_file),
            "--experiment", "cli-test", "--backend", "smartfrog",
            "--out", str(out_dir),
        ])
        assert status == 0
        text = (out_dir / "deployment.sf").read_text()
        assert "sfConfig extends Compound" in text

    def test_run_and_report_text(self, tbl_file, tmp_path, capsys):
        db_path = tmp_path / "obs.sqlite"
        status = main([
            "run", "--tbl", str(tbl_file), "--db", str(db_path),
            "--nodes", "10", "--quiet",
        ])
        assert status == 0
        assert db_path.is_file()
        capsys.readouterr()
        status = main(["report", "--db", str(db_path)])
        assert status == 0
        out = capsys.readouterr().out
        assert "1-1-1 @ wr=15%" in out
        assert "rt_ms" in out

    def test_report_csv_export(self, tbl_file, tmp_path, capsys):
        db_path = tmp_path / "obs.sqlite"
        main(["run", "--tbl", str(tbl_file), "--db", str(db_path),
              "--nodes", "10", "--quiet"])
        out_file = tmp_path / "trials.csv"
        capsys.readouterr()
        status = main(["report", "--db", str(db_path), "--format", "csv",
                       "--out", str(out_file)])
        assert status == 0
        rows = from_csv(out_file.read_text())
        assert len(rows) == 2
        assert {row["workload"] for row in rows} == {100, 200}

    def test_report_empty_db(self, tmp_path, capsys):
        from repro.results import ResultsDatabase
        db_path = tmp_path / "empty.sqlite"
        ResultsDatabase(str(db_path)).close()
        assert main(["report", "--db", str(db_path)]) == 1

    def test_figure_table5(self, tmp_path, capsys):
        status = main(["figure", "--id", "table5", "--out",
                       str(tmp_path)])
        assert status == 0
        assert (tmp_path / "table5.txt").is_file()
        assert "workers2.properties" in capsys.readouterr().out

    def test_figure_unknown_id(self, capsys):
        assert main(["figure", "--id", "figure99"]) == 1
        assert "unknown figure id" in capsys.readouterr().err

    def test_catalog(self, capsys):
        assert main(["catalog"]) == 0
        out = capsys.readouterr().out
        assert "mysql" in out and "emulab" in out

    def test_no_command_shows_help(self, capsys):
        assert main([]) == 2


class TestTraceCommand:
    def test_run_with_trace_then_trace_report(self, tbl_file, tmp_path,
                                              capsys):
        db_path = tmp_path / "traced.sqlite"
        status = main([
            "run", "--tbl", str(tbl_file), "--db", str(db_path),
            "--nodes", "10", "--trace", "--quiet",
        ])
        assert status == 0
        out = capsys.readouterr().out
        assert "repro trace" in out
        status = main(["trace", str(db_path)])
        assert status == 0
        out = capsys.readouterr().out
        assert "Per-trial phase breakdown" in out
        for phase in ("allocate", "generate", "deploy", "verify",
                      "simulate", "collect", "analyze", "teardown"):
            assert phase in out
        assert "Worker utilization" in out

    def test_trace_on_untraced_db_errors(self, tbl_file, tmp_path,
                                         capsys):
        db_path = tmp_path / "plain.sqlite"
        main(["run", "--tbl", str(tbl_file), "--db", str(db_path),
              "--nodes", "10", "--quiet"])
        capsys.readouterr()
        status = main(["trace", str(db_path)])
        assert status == 1
        assert "--trace" in capsys.readouterr().err

    def test_trace_missing_db_errors(self, tmp_path, capsys):
        status = main(["trace", str(tmp_path / "nope.sqlite")])
        assert status == 1
        assert "error:" in capsys.readouterr().err

    def test_figure_trace_stores_spans(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        status = main(["figure", "--id", "table6", "--scale", "0.02",
                       "--trace"])
        assert status == 0
        out = capsys.readouterr().out
        assert "trace.sqlite" in out
        from repro.api import open_results
        with open_results(str(tmp_path / "trace.sqlite"),
                          create=False) as database:
            assert database.span_count() > 0
            assert database.count() > 0
        capsys.readouterr()
        assert main(["trace", str(tmp_path / "trace.sqlite")]) == 0
        assert "Slowest phases" in capsys.readouterr().out
