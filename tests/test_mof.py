"""Tests for the CIM/MOF front end."""

import pytest

from repro.errors import MofError
from repro.spec.mof import (
    CimProperty,
    CimRepository,
    load_resource_model,
    parse,
    render_resource_mof,
    schema_repository,
    tokenize,
)

SIMPLE_CLASS = """
[Description("A demo class")]
class Demo_Thing {
    string Name;
    uint32 Count = 3;
    boolean Active = true;
    string Tags[];
};
"""


class TestLexer:
    def test_tokenizes_keywords_case_insensitively(self):
        tokens = tokenize("CLASS Instance OF")
        assert [t.kind for t in tokens] == ["keyword"] * 3
        assert [t.value for t in tokens] == ["class", "instance", "of"]

    def test_string_escapes(self):
        tokens = tokenize('"a\\n\\"b\\\\"')
        assert tokens[0].value == 'a\n"b\\'

    def test_comments_skipped(self):
        tokens = tokenize("// line\n/* block\nstill */ class")
        assert len(tokens) == 1

    def test_unterminated_block_comment(self):
        with pytest.raises(MofError):
            tokenize("/* never closed")

    def test_negative_number(self):
        tokens = tokenize("-42")
        assert tokens[0].value == -42

    def test_float_number(self):
        tokens = tokenize("3.5")
        assert tokens[0].value == 3.5

    def test_position_tracking(self):
        tokens = tokenize("class\n  Foo")
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_rejects_stray_character(self):
        with pytest.raises(MofError):
            tokenize("class @")


class TestParser:
    def test_parse_class(self):
        repo = parse(SIMPLE_CLASS)
        cls = repo.get_class("Demo_Thing")
        assert cls.qualifiers["Description"] == "A demo class"
        assert cls.property("Count").default == 3
        assert cls.property("Tags").is_array

    def test_parse_instance_with_defaults(self):
        repo = parse(SIMPLE_CLASS + """
        instance of Demo_Thing { Name = "x"; };
        """)
        inst = repo.single("Demo_Thing")
        assert inst.get("Name") == "x"
        assert inst.get("Count") == 3
        assert inst.get("Active") is True

    def test_parse_array_value(self):
        repo = parse(SIMPLE_CLASS + """
        instance of Demo_Thing { Name = "x"; Tags = {"a", "b"}; };
        """)
        assert repo.single("Demo_Thing").get("Tags") == ("a", "b")

    def test_empty_array_value(self):
        repo = parse(SIMPLE_CLASS + """
        instance of Demo_Thing { Name = "x"; Tags = {}; };
        """)
        assert repo.single("Demo_Thing").get("Tags") == ()

    def test_unknown_class_rejected(self):
        with pytest.raises(MofError):
            parse('instance of Nope { Name = "x"; };')

    def test_unknown_property_rejected(self):
        with pytest.raises(MofError):
            parse(SIMPLE_CLASS + "instance of Demo_Thing { Missing = 1; };")

    def test_type_mismatch_rejected(self):
        with pytest.raises(MofError):
            parse(SIMPLE_CLASS + "instance of Demo_Thing { Name = 5; };")

    def test_unsigned_rejects_negative(self):
        with pytest.raises(MofError):
            parse(SIMPLE_CLASS + 'instance of Demo_Thing { Count = -1; };')

    def test_scalar_rejects_array(self):
        with pytest.raises(MofError):
            parse(SIMPLE_CLASS + 'instance of Demo_Thing { Name = {"a"}; };')

    def test_duplicate_class_rejected(self):
        with pytest.raises(MofError):
            parse(SIMPLE_CLASS + SIMPLE_CLASS)

    def test_duplicate_property_assignment_rejected(self):
        with pytest.raises(MofError):
            parse(SIMPLE_CLASS +
                  'instance of Demo_Thing { Name = "a"; Name = "b"; };')

    def test_unknown_type_rejected(self):
        with pytest.raises(MofError):
            parse("class Bad { varchar Name; };")

    def test_error_carries_location(self):
        with pytest.raises(MofError) as excinfo:
            parse("class Bad {\n  varchar Name;\n};", source="bad.mof")
        assert "bad.mof:2" in str(excinfo.value)


class TestModel:
    def test_require_missing_property(self):
        repo = parse(SIMPLE_CLASS + 'instance of Demo_Thing { Count = 1; };')
        with pytest.raises(MofError):
            repo.single("Demo_Thing").require("Name")

    def test_single_rejects_many(self):
        repo = parse(SIMPLE_CLASS + """
        instance of Demo_Thing { Name = "a"; };
        instance of Demo_Thing { Name = "b"; };
        """)
        with pytest.raises(MofError):
            repo.single("Demo_Thing")

    def test_merge_repositories(self):
        first = parse(SIMPLE_CLASS)
        second = CimRepository()
        second.merge(first)
        second.add_instance("Demo_Thing", {"Name": "merged"})
        assert second.single("Demo_Thing").get("Name") == "merged"

    def test_property_check_boolean_not_int(self):
        prop = CimProperty(name="Flag", cim_type="uint32")
        with pytest.raises(MofError):
            prop.check(True, "Demo")


class TestElbaSchema:
    def test_schema_parses(self):
        repo = schema_repository()
        assert "Elba_Cluster" in repo.classes
        assert "Elba_TierAssignment" in repo.classes

    def test_render_and_load_rubis_emulab(self):
        mof = render_resource_mof("rubis", "emulab")
        model = load_resource_model(mof)
        assert model.platform.name == "emulab"
        assert set(model.tiers) == {"web", "app", "db"}
        assert [p.name for p in model.tiers["app"].packages] == [
            "tomcat", "jonas"
        ]

    def test_render_with_weblogic_override(self):
        mof = render_resource_mof("rubis", "warp", app_server="weblogic")
        model = load_resource_model(mof)
        assert [p.name for p in model.tiers["app"].packages] == [
            "tomcat", "weblogic"
        ]

    def test_render_rubbos_has_no_ejb_container(self):
        mof = render_resource_mof("rubbos", "emulab")
        model = load_resource_model(mof)
        assert [p.name for p in model.tiers["app"].packages] == ["tomcat"]

    def test_db_tier_daemon_is_mysql_not_controller(self):
        mof = render_resource_mof("rubis", "emulab")
        model = load_resource_model(mof)
        assert model.tiers["db"].daemon_package().name == "mysql"

    def test_app_tier_daemon_is_last_package(self):
        mof = render_resource_mof("rubis", "emulab")
        model = load_resource_model(mof)
        assert model.tiers["app"].daemon_package().name == "jonas"

    def test_custom_node_type_for_db(self):
        mof = render_resource_mof("rubis", "emulab",
                                  node_types={"db": "emulab-low"})
        model = load_resource_model(mof)
        assert model.tiers["db"].node_type.cpu_ghz == 0.6
        assert model.tiers["app"].node_type.cpu_ghz == 3.0

    def test_unknown_platform_rejected(self):
        with pytest.raises(Exception):
            render_resource_mof("rubis", "atlantis")

    def test_package_override_applied(self):
        mof = render_resource_mof("rubis", "emulab") + """
        instance of Elba_PackageOverride {
            Package = "jonas";
            WorkerPool = 64;
        };
        """
        model = load_resource_model(mof)
        assert model.package("jonas").worker_pool == 64
        # Untouched attribute keeps its catalog value.
        assert model.package("jonas").efficiency == 1.0

    def test_tier_mismatch_rejected(self):
        bad = """
        instance of Elba_Cluster { Name = "c"; Platform = "emulab"; };
        instance of Elba_TierAssignment {
            Cluster = "c"; Tier = "web"; Software = {"mysql"};
        };
        """
        with pytest.raises(MofError):
            load_resource_model(bad)

    def test_duplicate_tier_rejected(self):
        dup = """
        instance of Elba_Cluster { Name = "c"; Platform = "emulab"; };
        instance of Elba_TierAssignment {
            Cluster = "c"; Tier = "web"; Software = {"apache"};
        };
        instance of Elba_TierAssignment {
            Cluster = "c"; Tier = "web"; Software = {"apache"};
        };
        """
        with pytest.raises(MofError):
            load_resource_model(dup)
