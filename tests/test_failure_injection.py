"""Failure-injection tests: broken inputs must fail loudly, not softly.

The Elba staging story (Section VI) is precisely about catching broken
deployments before production; these tests corrupt various stages and
assert the pipeline surfaces the damage instead of producing numbers
from a half-deployed system.
"""

import pytest

from repro.deploy import DeploymentEngine, extract_deployed_system
from repro.errors import (
    AllocationError,
    DeployError,
    VerificationError,
)
from repro.generator import HostPlan, Mulini
from repro.spec.mof import load_resource_model, render_resource_mof
from repro.spec.tbl import parse as parse_tbl
from repro.spec.topology import Topology
from repro.vcluster import VirtualCluster


@pytest.fixture
def setup():
    cluster = VirtualCluster("emulab", node_count=14)
    spec = parse_tbl("""
    benchmark rubis; platform emulab;
    experiment "inject" {
        topology 1-1-1;
        workload 100;
        write_ratio 15%;
        trial { warmup 14s; run 15s; cooldown 3s; }
    }
    """)
    experiment = spec.experiment("inject")
    mulini = Mulini(load_resource_model(
        render_resource_mof("rubis", "emulab")))
    return cluster, experiment, mulini


def _prepare(cluster, experiment, mulini, topology=Topology(1, 1, 1)):
    allocation = cluster.allocate(topology)
    plan = HostPlan.from_allocation(allocation)
    bundle = mulini.generate(experiment, topology, 100, 0.15,
                             host_plan=plan)
    return allocation, bundle


class TestDeploymentFailures:
    def test_corrupt_package_archive_aborts_run(self, setup):
        cluster, experiment, mulini = setup
        allocation, bundle = _prepare(cluster, experiment, mulini)
        # Corrupt the MySQL tarball in the control host's repository.
        cluster.control.fs.write("/packages/mysql-max-4.0.27.tar.gz",
                                 "garbage, not a tarball\n")
        engine = DeploymentEngine(cluster=cluster)
        with pytest.raises(DeployError):
            engine.deploy(bundle, allocation)

    def test_missing_generated_script_aborts_run(self, setup):
        cluster, experiment, mulini = setup
        allocation, bundle = _prepare(cluster, experiment, mulini)
        run_path = bundle.install_to(allocation.control)
        # Delete one subscript after installation, before execution.
        victim = bundle.path_of("scripts/MYSQL1_ignition.sh")
        allocation.control.fs.remove(victim)
        engine = DeploymentEngine(cluster=cluster)
        with pytest.raises(Exception):
            engine.interpreter.run_script_file(allocation.control,
                                               run_path)

    def test_sabotaged_run_sh_fails_loudly(self, setup):
        cluster, experiment, mulini = setup
        allocation, bundle = _prepare(cluster, experiment, mulini)
        bundle.files["run.sh"] = ("set -e\n"
                                  "frobnicate_the_cluster --now\n")
        engine = DeploymentEngine(cluster=cluster)
        with pytest.raises(DeployError, match="aborted|status"):
            engine.deploy(bundle, allocation)

    def test_missing_driver_config_detected(self, setup):
        cluster, experiment, mulini = setup
        allocation, bundle = _prepare(cluster, experiment, mulini)
        engine = DeploymentEngine(cluster=cluster)
        deployment = engine.deploy(bundle, allocation)
        # Remove the deployed driver parameters, then re-extract.
        client = deployment.system.client_host
        client.fs.remove("/opt/driver/driver.properties")
        hosts = [allocation.client] + allocation.all_server_hosts()
        with pytest.raises(DeployError, match="driver"):
            extract_deployed_system(hosts)

    def test_killed_database_detected(self, setup):
        cluster, experiment, mulini = setup
        allocation, bundle = _prepare(cluster, experiment, mulini)
        engine = DeploymentEngine(cluster=cluster)
        deployment = engine.deploy(bundle, allocation)
        db_host = deployment.system.db_backends[0].host
        db_host.kill_by_name("mysqld")
        hosts = [allocation.client] + allocation.all_server_hosts()
        with pytest.raises(DeployError, match="mysqld"):
            extract_deployed_system(hosts)

    def test_corrupted_workers2_detected(self, setup):
        cluster, experiment, mulini = setup
        allocation, bundle = _prepare(cluster, experiment, mulini)
        engine = DeploymentEngine(cluster=cluster)
        deployment = engine.deploy(bundle, allocation)
        web_host = deployment.system.web_servers[0].host
        web_host.fs.write("/opt/apache/conf/workers2.properties",
                          "[ajp13:app1]\nhost=node-2\n")  # port missing
        hosts = [allocation.client] + allocation.all_server_hosts()
        with pytest.raises(DeployError, match="incomplete"):
            extract_deployed_system(hosts)

    def test_monitor_killed_fails_verification(self, setup):
        cluster, experiment, mulini = setup
        allocation, bundle = _prepare(cluster, experiment, mulini)
        engine = DeploymentEngine(cluster=cluster)
        deployment = engine.deploy(bundle, allocation)
        deployment.system.db_backends[0].host.kill_by_name("sar")
        hosts = [allocation.client] + allocation.all_server_hosts()
        system = extract_deployed_system(hosts)
        from repro.deploy import verify_deployment
        with pytest.raises(VerificationError, match="monitor"):
            verify_deployment(system, experiment, Topology(1, 1, 1),
                              100, 0.15)

    def test_cluster_exhaustion_raises_cleanly(self, setup):
        cluster, experiment, _mulini = setup
        # 14 nodes: control + client + 12 workers (some low-end).
        with pytest.raises(AllocationError):
            cluster.allocate(Topology(1, 12, 3))
        # Pool unchanged: a normal allocation still succeeds.
        allocation = cluster.allocate(Topology(1, 1, 1))
        assert allocation.machine_count() == 5

    def test_teardown_reports_survivors(self, setup):
        cluster, experiment, mulini = setup
        allocation, bundle = _prepare(cluster, experiment, mulini)
        engine = DeploymentEngine(cluster=cluster)
        deployment = engine.deploy(bundle, allocation)
        # Break the teardown script for one daemon.
        control = allocation.control
        stop_path = bundle.path_of("scripts/MYSQL1_stop.sh")
        control.fs.write(stop_path, "echo skipping the kill\n")
        with pytest.raises(DeployError, match="mysqld"):
            engine.teardown(deployment)
