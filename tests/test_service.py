"""Campaign service plane tests: fleet, controller, shards, wire.

The headline contract is the same one the scheduler and hot-path
planes already carry, lifted to the daemon: two campaigns submitted
*concurrently* to one ``repro serve`` fleet must produce final results
databases byte-identical to sequential in-process runs — at any worker
count, after cancel + resume, and after killing the daemon and
resuming both campaigns on a fresh one.
"""

import os
import threading
import time

import pytest

from repro import api
from repro.errors import CampaignCancelled, ServiceBusy, ServiceError
from repro.results.database import ResultsDatabase, merge_shards, shard_path
from repro.service import (
    CampaignClient,
    CampaignController,
    ServiceDaemon,
    StreamingAggregator,
    WorkerFleet,
)

TBL_A = """
benchmark rubis; platform emulab;
experiment "alpha" {
    topology 1-1-1, 1-2-1;
    workload 100, 300;
    write_ratio 10%;
    trial { warmup 2s; run 10s; cooldown 2s; }
}
"""

TBL_B = """
benchmark rubis; platform emulab;
experiment "beta" {
    topology 1-2-2;
    workload 200, 400, 600;
    write_ratio 20%;
    trial { warmup 2s; run 10s; cooldown 2s; }
}
"""

ADAPT_TBL = """
benchmark rubis; platform emulab;
experiment "knee" {
    topology 1-1-1, 1-2-1;
    workload 100, 200, 300, 400, 500;
    write_ratio 10%;
    trial { warmup 2s; run 10s; cooldown 2s; }
}
"""

#: Identity covers every persistent table.  campaign_meta is excluded
#: by design: it stores the hot-path cache counters, which legitimately
#: differ between a shared-plane daemon run and a standalone run.
TABLES = ("trials", "host_cpu", "state_metrics", "spans", "failures",
          "planner_decisions")


def full_dump(path):
    database = ResultsDatabase(path)
    try:
        return {table: database.dump_rows(table) for table in TABLES}
    finally:
        database.close()


def wait_done(controller, campaign_id, timeout=180):
    record = controller.wait(campaign_id, timeout=timeout)
    assert record is not None, f"campaign {campaign_id} did not settle"
    return record


# ---------------------------------------------------------------------------
# The fleet: fair shares, ceilings, ordered delivery, cancellation


class GatedRunner:
    """A fake trial runner whose tasks block until released, recording
    per-tenant concurrency highs along the way."""

    def __init__(self, gate=None, observed=None, tenant=None):
        self.gate = gate
        self.observed = observed
        self.tenant = tenant
        self._lock = threading.Lock()
        self._running = 0

    def run_task(self, task):
        if self.observed is not None:
            with self.observed["lock"]:
                running = self.observed["running"]
                running[self.tenant] = running.get(self.tenant, 0) + 1
                peaks = self.observed["peak"]
                peaks[self.tenant] = max(peaks.get(self.tenant, 0),
                                         running[self.tenant])
        try:
            if self.gate is not None:
                assert self.gate.wait(timeout=30)
            return ("done", self.tenant, task)
        finally:
            if self.observed is not None:
                with self.observed["lock"]:
                    self.observed["running"][self.tenant] -= 1


class TestWorkerFleet:
    def test_delivery_in_task_order_across_tenants(self):
        fleet = WorkerFleet(jobs=3)
        try:
            lease_a = fleet.attach("a", lambda: GatedRunner(tenant="a"),
                                   ceiling=2)
            lease_b = fleet.attach("b", lambda: GatedRunner(tenant="b"),
                                   ceiling=2)
            out = {}

            def run(name, lease, tasks):
                out[name] = lease.run_tasks(tasks)

            threads = [
                threading.Thread(target=run,
                                 args=("a", lease_a, list(range(7)))),
                threading.Thread(target=run,
                                 args=("b", lease_b, list("xyz"))),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert out["a"] == [("done", "a", i) for i in range(7)]
            assert out["b"] == [("done", "b", c) for c in "xyz"]
            stats = fleet.stats()
            assert stats["dispatched"] == 10
            assert stats["in_flight"] == 0
        finally:
            fleet.close()

    def test_ceiling_caps_a_campaign_below_fleet_capacity(self):
        observed = {"lock": threading.Lock(), "running": {}, "peak": {}}
        gate = threading.Event()
        fleet = WorkerFleet(jobs=4)
        try:
            lease = fleet.attach(
                "capped",
                lambda: GatedRunner(gate=gate, observed=observed,
                                    tenant="capped"),
                ceiling=2)
            done = []
            worker = threading.Thread(
                target=lambda: done.append(
                    lease.run_tasks(list(range(6)))))
            worker.start()
            deadline = time.time() + 10
            while time.time() < deadline:
                with observed["lock"]:
                    if observed["peak"].get("capped", 0) >= 2:
                        break
                time.sleep(0.02)
            gate.set()
            worker.join(timeout=30)
            assert done and len(done[0]) == 6
            # The fleet had 4 free workers; the campaign's jobs=2
            # ceiling must have kept it at 2 in flight.
            assert observed["peak"]["capped"] == 2
        finally:
            gate.set()
            fleet.close()

    def test_cancel_delivers_a_prefix_then_raises(self):
        gate = threading.Event()
        fleet = WorkerFleet(jobs=1)
        try:
            lease = fleet.attach(
                "doomed", lambda: GatedRunner(gate=gate, tenant="doomed"),
                ceiling=1)
            caught = []
            delivered = []
            worker = threading.Thread(
                target=lambda: caught.append(
                    _run_catching(lease, list(range(8)),
                                  delivered.append)))
            worker.start()
            time.sleep(0.2)          # let the first task start
            lease.cancel()
            gate.set()               # release the in-flight trial
            worker.join(timeout=30)
            assert isinstance(caught[0], CampaignCancelled)
            # Whatever arrived is an exact prefix of the task order.
            assert [task for _done, _t, task in delivered] == \
                list(range(len(delivered)))
            assert len(delivered) < 8
            with pytest.raises(CampaignCancelled):
                lease.run_tasks([99])
        finally:
            gate.set()
            fleet.close()

    def test_detached_campaign_is_rejected(self):
        fleet = WorkerFleet(jobs=1)
        try:
            lease = fleet.attach("gone", lambda: GatedRunner(tenant="g"))
            lease.close()
            with pytest.raises(ServiceError, match="not attached"):
                lease.run_tasks([1])
            with pytest.raises(ServiceError, match="already attached"):
                fleet.attach("other", lambda: None)
                fleet.attach("other", lambda: None)
        finally:
            fleet.close()

    def test_worker_error_fails_the_batch(self):
        class ExplodingRunner:
            def run_task(self, task):
                raise ServiceError(f"task {task} exploded")

        fleet = WorkerFleet(jobs=2)
        try:
            lease = fleet.attach("boom", ExplodingRunner)
            with pytest.raises(ServiceError, match="exploded"):
                lease.run_tasks([1, 2, 3])
        finally:
            fleet.close()


def _run_catching(lease, tasks, on_result):
    try:
        return lease.run_tasks(tasks, on_result)
    except Exception as error:          # noqa: BLE001 — relayed to asserts
        return error


# ---------------------------------------------------------------------------
# The streaming aggregator


class TestStreamingAggregator:
    def test_tap_attributes_per_campaign(self):
        report = api.run_campaign(TBL_A)
        results = report.database.query()
        aggregator = StreamingAggregator()
        tap_one = aggregator.tap("c1")
        tap_two = aggregator.tap("c2")
        for result in results:
            tap_one(result)
        tap_two(results[0])
        snap = aggregator.snapshot()
        assert snap["trials_observed"] == len(results) + 1
        assert snap["campaigns"]["c1"]["trials"] == len(results)
        assert snap["campaigns"]["c2"]["trials"] == 1
        assert snap["campaigns"]["c1"]["by_experiment"] == \
            {"alpha": len(results)}
        assert snap["campaigns"]["c1"]["peak_throughput"] > 0
        rendered = aggregator.render()
        assert "campaign service aggregate" in rendered
        assert "[c1]" in rendered and "[c2]" in rendered


# ---------------------------------------------------------------------------
# The controller: concurrent byte-identity, cancel/resume, kill/resume


@pytest.fixture(scope="module")
def sequential_dumps(tmp_path_factory):
    """Reference databases from plain in-process (CLI-equivalent) runs."""
    root = tmp_path_factory.mktemp("seq")
    paths = {"a": str(root / "a.db"), "b": str(root / "b.db"),
             "adaptive": str(root / "adaptive.db")}
    api.run_campaign(TBL_A, database=paths["a"]).database.close()
    api.run_campaign(TBL_B, database=paths["b"]).database.close()
    api.run_adaptive(ADAPT_TBL, policy="knee",
                     database=paths["adaptive"]).database.close()
    return {name: full_dump(path) for name, path in paths.items()}


class TestCampaignController:
    def test_concurrent_campaigns_match_sequential_runs(
            self, tmp_path, sequential_dumps):
        db_a = str(tmp_path / "a.db")
        db_b = str(tmp_path / "b.db")
        controller = CampaignController(jobs=4)
        try:
            id_a = controller.submit(TBL_A, db_path=db_a, jobs=3)
            id_b = controller.submit(TBL_B, db_path=db_b, jobs=2)
            rec_a = wait_done(controller, id_a)
            rec_b = wait_done(controller, id_b)
        finally:
            controller.shutdown()
        assert rec_a["state"] == "done" and rec_b["state"] == "done"
        assert full_dump(db_a) == sequential_dumps["a"]
        assert full_dump(db_b) == sequential_dumps["b"]
        # Shards merged and removed; the merged files are consistent.
        assert not os.path.exists(shard_path(db_a))
        assert not os.path.exists(shard_path(db_b))
        database = ResultsDatabase(db_a)
        assert database.integrity_check() == []
        database.close()
        # Tenant-attributed cache stats: each campaign recorded its own
        # traffic on the shared plane, not the other's.
        assert any(c.get("misses", 0) or c.get("hits", 0)
                   for c in rec_a["cache_stats"].values())

    def test_adaptive_campaign_matches_sequential_exploration(
            self, tmp_path, sequential_dumps):
        db = str(tmp_path / "adaptive.db")
        controller = CampaignController(jobs=3)
        try:
            campaign_id = controller.submit(ADAPT_TBL, db_path=db, jobs=3,
                                            policy="knee")
            record = wait_done(controller, campaign_id)
        finally:
            controller.shutdown()
        assert record["state"] == "done", record["error"]
        assert full_dump(db) == sequential_dumps["adaptive"]

    def test_cancel_checkpoints_and_resume_completes_identically(
            self, tmp_path, sequential_dumps):
        db = str(tmp_path / "a.db")
        controller = CampaignController(jobs=2)
        first_result = threading.Event()
        tap = controller.aggregator.observe
        controller.aggregator.observe = \
            lambda cid, res: (tap(cid, res), first_result.set())
        try:
            campaign_id = controller.submit(TBL_A, db_path=db, jobs=1)
            assert first_result.wait(timeout=60)
            controller.cancel(campaign_id)
            record = wait_done(controller, campaign_id)
            assert record["state"] == "cancelled"
            assert os.path.exists(shard_path(db))
            assert not os.path.exists(db)
            # Live resume: same id, same parameters, skips the stored
            # prefix, finishes the rest.
            assert controller.resume(campaign_id) == campaign_id
            record = wait_done(controller, campaign_id)
        finally:
            controller.shutdown()
        assert record["state"] == "done", record["error"]
        assert record["skipped"] >= 1
        assert full_dump(db) == sequential_dumps["a"]

    def test_daemon_kill_then_resume_both_campaigns(
            self, tmp_path, sequential_dumps):
        db_a = str(tmp_path / "a.db")
        db_b = str(tmp_path / "b.db")
        controller = CampaignController(jobs=2)
        started = threading.Event()
        tap = controller.aggregator.observe
        controller.aggregator.observe = \
            lambda cid, res: (tap(cid, res), started.set())
        id_a = controller.submit(TBL_A, db_path=db_a, jobs=1)
        id_b = controller.submit(TBL_B, db_path=db_b, jobs=1)
        assert started.wait(timeout=60)
        controller.shutdown(abort=True)     # the kill switch
        for campaign_id in (id_a, id_b):
            assert controller.status(campaign_id)["state"] in \
                ("cancelled", "done")
        # A fresh daemon, pointed at the checkpoints alone — no record
        # survives, identity comes from the shards' campaign_meta.
        fresh = CampaignController(jobs=2)
        try:
            new_a = fresh.resume(db_path=db_a, jobs=2)
            new_b = fresh.resume(db_path=db_b, jobs=2)
            rec_a = wait_done(fresh, new_a)
            rec_b = wait_done(fresh, new_b)
        finally:
            fresh.shutdown()
        assert rec_a["state"] == "done", rec_a["error"]
        assert rec_b["state"] == "done", rec_b["error"]
        assert full_dump(db_a) == sequential_dumps["a"]
        assert full_dump(db_b) == sequential_dumps["b"]

    def test_backpressure_rejects_past_max_active(self, tmp_path):
        controller = CampaignController(jobs=1, max_active=1)
        release = threading.Event()
        # Deterministic saturation: the campaign thread parks until
        # released, holding its RUNNING slot.
        controller._run_campaign = \
            lambda record: (release.wait(timeout=30),
                            controller._settle(record, "done", None))
        try:
            controller.submit(TBL_A, db_path=str(tmp_path / "x.db"))
            with pytest.raises(ServiceBusy, match="in flight"):
                controller.submit(TBL_A, db_path=str(tmp_path / "y.db"))
        finally:
            release.set()
            controller.shutdown()

    def test_unknown_campaign_and_bad_submit_are_service_errors(
            self, tmp_path):
        controller = CampaignController(jobs=1)
        try:
            with pytest.raises(ServiceError, match="unknown campaign"):
                controller.status("c999")
            with pytest.raises(ServiceError, match="needs tbl_text"):
                controller.submit(db_path=str(tmp_path / "x.db"))
            # A resume pointed at nothing settles as failed (the shard
            # check runs on the campaign thread, not in submit).
            ghost = controller.resume(db_path=str(tmp_path / "missing.db"))
            record = wait_done(controller, ghost, timeout=30)
            assert record["state"] == "failed"
            assert "nothing to resume" in record["error"]
        finally:
            controller.shutdown()


# ---------------------------------------------------------------------------
# Shard merging beyond the single-campaign case


class TestMergeShards:
    def test_multi_shard_merge_namespaces_meta_and_offsets_rounds(
            self, tmp_path):
        shard_a = str(tmp_path / "a.shard")
        shard_b = str(tmp_path / "b.shard")
        api.run_adaptive(ADAPT_TBL, policy="knee",
                         database=shard_a).database.close()
        api.run_campaign(TBL_B, database=shard_b).database.close()
        merged = merge_shards([shard_a, shard_b],
                              str(tmp_path / "combined.db"),
                              namespace_meta=["knee", "grid"])
        try:
            assert merged.integrity_check() == []
            assert merged.get_meta("knee:tbl_text") == ADAPT_TBL
            assert merged.get_meta("grid:tbl_text") == TBL_B
            assert merged.get_meta("tbl_text") is None
            names = {r.experiment_name for r in merged.query()}
            assert names == {"knee", "beta"}
            # Decision rounds from shard A land unshifted (B has none),
            # and every trial row survived the merge.
            source_a = ResultsDatabase(shard_a)
            source_b = ResultsDatabase(shard_b)
            assert merged.count() == source_a.count() + source_b.count()
            assert merged.decision_count() == source_a.decision_count()
            source_a.close()
            source_b.close()
        finally:
            merged.close()


# ---------------------------------------------------------------------------
# The wire: daemon + thin client end to end


class TestHttpService:
    def test_submit_wait_status_aggregate_shutdown(self, tmp_path):
        db = str(tmp_path / "http.db")
        daemon = ServiceDaemon(port=0, jobs=2)
        url = daemon.start()
        client = CampaignClient(url)
        try:
            assert client.ping()
            campaign_id = client.submit(TBL_A, db_path=db, jobs=2)
            record = client.wait(campaign_id, timeout=120)
            assert record is not None and record["state"] == "done"
            state = client.status()
            assert state["fleet"]["workers"] == 2
            assert state["campaigns"][campaign_id]["state"] == "done"
            one = client.status(campaign_id)
            assert one["trials"] == record["trials"] > 0
            aggregate = client.aggregate()
            assert f"[{campaign_id}]" in aggregate["report"]
            with pytest.raises(ServiceError, match="unknown campaign"):
                client.status("c999")
        finally:
            client.shutdown()
            daemon.stop()
        time.sleep(0.2)
        assert not client.ping()
        database = ResultsDatabase(db)
        assert database.count() > 0
        database.close()

    def test_unreachable_daemon_raises_service_error(self):
        client = CampaignClient("http://127.0.0.1:9", timeout=2)
        assert not client.ping()
        with pytest.raises(ServiceError, match="unreachable"):
            client.status()

    def test_busy_travels_as_service_busy(self, tmp_path, monkeypatch):
        daemon = ServiceDaemon(port=0, jobs=1, max_active=1)
        release = threading.Event()
        monkeypatch.setattr(
            daemon.controller, "_run_campaign",
            lambda record: (release.wait(timeout=30),
                            daemon.controller._settle(record, "done",
                                                      None)))
        url = daemon.start()
        client = CampaignClient(url)
        try:
            client.submit(TBL_A, db_path=str(tmp_path / "x.db"))
            with pytest.raises(ServiceBusy):
                client.submit(TBL_A, db_path=str(tmp_path / "y.db"))
        finally:
            release.set()
            daemon.stop()


# ---------------------------------------------------------------------------
# Bounded waiting: a dead daemon must never hang a client forever


class TestBoundedWait:
    def _scripted_client(self, responses):
        client = CampaignClient("http://test.invalid")
        calls = []

        def fake_call(method, path, body=None, timeout=None):
            calls.append((path, body["timeout"], timeout))
            return responses[min(len(calls), len(responses)) - 1]

        client._call = fake_call
        return client, calls

    def test_unbounded_wait_polls_in_bounded_slices(self):
        client, calls = self._scripted_client(
            [{"timed_out": True}, {"timed_out": True},
             {"state": "done"}])
        record = client.wait("c001", poll=5)     # no deadline at all
        assert record == {"state": "done"}
        # Three requests, each with a finite server-side slice and a
        # finite HTTP timeout — never an unbounded socket read.
        assert calls == [("/wait", 5, 15)] * 3

    def test_deadline_expires_across_slices(self):
        client, calls = self._scripted_client([{"timed_out": True}])
        assert client.wait("c001", timeout=7, poll=5) is None
        assert [ask for _path, ask, _t in calls] == [5, 2]

    def test_wait_on_a_dead_daemon_raises_within_a_slice(self):
        client = CampaignClient("http://127.0.0.1:9", timeout=2)
        with pytest.raises(ServiceError, match="unreachable"):
            client.wait("c001", poll=1)


# ---------------------------------------------------------------------------
# The heal endpoint: auto-remediation as a service


HEAL_TBL = """
benchmark rubis; platform emulab;
experiment "healme" {
    topology 1-1-1;
    workload 50, 100;
    write_ratio 15%;
    trial { warmup 3s; run 15s; cooldown 3s; }
}
"""


def _faulted_heal_db(path):
    from repro import FaultPlan, FaultSpec, RetryPolicy
    from repro.faults import EVERY_ATTEMPT

    plan = FaultPlan([FaultSpec(kind="host-crash", target="node-1",
                                rate=1.0, attempts=EVERY_ATTEMPT,
                                transient=False)], seed=3)
    api.run_campaign(HEAL_TBL, database=path, faults=plan,
                     retry=RetryPolicy(max_attempts=2,
                                       quarantine_after=2)
                     ).database.close()


class TestHealService:
    def test_heal_a_database_round_trip(self, tmp_path):
        db = str(tmp_path / "faulted.db")
        _faulted_heal_db(db)
        daemon = ServiceDaemon(port=0, jobs=2)
        url = daemon.start()
        client = CampaignClient(url)
        try:
            heal_id = client.heal(db_path=db, jobs=2)
            assert heal_id.startswith("h")
            record = client.wait(heal_id, timeout=120)
            assert record is not None and record["state"] == "done"
            assert record["kind"] == "heal"
            assert "heal healed" in record["summary"]
            assert "replace host node-1" in record["summary"]
        finally:
            client.shutdown()
            daemon.stop()
        database = ResultsDatabase(db)
        assert database.remediation_count() > 0
        assert database.get_meta("heal_outcome") == "healed"
        assert database.integrity_check() == []
        database.close()

    def test_heal_by_id_waits_for_the_campaign(self, tmp_path):
        db = str(tmp_path / "healthy.db")
        daemon = ServiceDaemon(port=0, jobs=2)
        url = daemon.start()
        client = CampaignClient(url)
        try:
            campaign_id = client.submit(HEAL_TBL, db_path=db, jobs=2)
            heal_id = client.heal(campaign_id)
            record = client.wait(heal_id, timeout=120)
            assert record is not None and record["state"] == "done"
            assert "heal healthy" in record["summary"]
        finally:
            client.shutdown()
            daemon.stop()

    def test_heal_needs_a_target(self):
        daemon = ServiceDaemon(port=0, jobs=1)
        url = daemon.start()
        client = CampaignClient(url)
        try:
            with pytest.raises(ServiceError,
                               match="campaign_id or a db_path"):
                client.heal()
        finally:
            daemon.stop()

    def test_heal_cli_against_a_daemon(self, tmp_path, capsys):
        from repro.cli import main

        db = str(tmp_path / "faulted.db")
        _faulted_heal_db(db)
        daemon = ServiceDaemon(port=0, jobs=2)
        url = daemon.start()
        try:
            assert main(["heal", db, "--url", url, "--jobs", "2"]) == 0
            out = capsys.readouterr().out
            assert "healing as h" in out
            assert "heal healed" in out
        finally:
            daemon.stop()


# ---------------------------------------------------------------------------
# The CLI front of the service surface


class TestServiceCli:
    def test_submit_status_cancel_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        tbl_file = tmp_path / "spec.tbl"
        tbl_file.write_text(TBL_A)
        db = str(tmp_path / "cli.db")
        daemon = ServiceDaemon(port=0, jobs=2)
        url = daemon.start()
        try:
            assert main(["submit", "--tbl", str(tbl_file), "--db", db,
                         "--jobs", "2", "--url", url, "--wait"]) == 0
            out = capsys.readouterr().out
            assert "submitted campaign" in out
            assert f"observations stored in {db}" in out
            assert main(["status", "--url", url]) == 0
            out = capsys.readouterr().out
            assert "done" in out and db in out
            assert main(["shutdown", "--url", url]) == 0
        finally:
            daemon.stop()
        assert full_dump(db)["trials"]

    def test_submit_without_tbl_or_resume_is_an_error(self, tmp_path,
                                                      capsys):
        from repro.cli import main

        assert main(["submit", "--db", str(tmp_path / "x.db")]) == 2
        assert "needs --tbl" in capsys.readouterr().err
