"""Tests for trial repetitions and saturation-noise quantification."""

import pytest

from repro.experiments import build_experiment
from repro.experiments.figures import make_runner
from repro.results import analysis
from repro.spec.tbl import parse as parse_tbl
from repro.spec.topology import Topology


class TestSpec:
    def test_repetitions_parse(self):
        spec = parse_tbl("""
        benchmark rubis; platform emulab;
        experiment "r" { topology 1-1-1; workload 100; repetitions 3; }
        """)
        assert spec.experiment("r").repetitions == 3

    def test_repetitions_default_one(self):
        spec = parse_tbl("""
        benchmark rubis; platform emulab;
        experiment "r" { topology 1-1-1; workload 100; }
        """)
        assert spec.experiment("r").repetitions == 1

    def test_repetitions_must_be_positive(self):
        from repro.errors import TblError
        with pytest.raises(TblError):
            parse_tbl("""
            benchmark rubis; platform emulab;
            experiment "r" { topology 1-1-1; workload 100; repetitions 0; }
            """)

    def test_writer_roundtrip(self):
        experiment, tbl = build_experiment(
            name="r", benchmark="rubis", platform="emulab",
            topologies=[Topology(1, 1, 1)], workloads=(100,),
            repetitions=4,
        )
        assert "repetitions 4;" in tbl
        assert experiment.repetitions == 4


class TestRunner:
    @pytest.fixture(scope="class")
    def repeated_results(self):
        runner = make_runner("emulab", "rubis", node_count=10)
        experiment, _tbl = build_experiment(
            name="noise", benchmark="rubis", platform="emulab",
            topologies=[Topology(1, 1, 1)], workloads=(100, 300),
            scale=0.06, repetitions=3, seed=20,
        )
        return runner.run_experiment(experiment)

    def test_repetitions_multiply_trials(self, repeated_results):
        assert len(repeated_results) == 2 * 3

    def test_seeds_distinct_per_repetition(self, repeated_results):
        seeds = {r.seed for r in repeated_results if r.workload == 100}
        assert seeds == {20, 21, 22}

    def test_aggregate_repetitions(self, repeated_results):
        aggregated = analysis.aggregate_repetitions(repeated_results)
        assert len(aggregated) == 2
        light = aggregated[("1-1-1", 100, 0.15)]
        assert light["n"] == 3
        assert light["mean_rt_ms"] > 0
        assert light["dnf"] == 0

    def test_saturation_noise_exceeds_light_load_noise(self,
                                                       repeated_results):
        # The paper: measured results "show the uncertainties that arise
        # at saturation".  Relative RT spread at 300 users (saturated)
        # dwarfs the spread at 100 users.
        aggregated = analysis.aggregate_repetitions(repeated_results)
        light = aggregated[("1-1-1", 100, 0.15)]
        heavy = aggregated[("1-1-1", 300, 0.15)]
        light_cv = light["std_rt_ms"] / light["mean_rt_ms"]
        assert heavy["std_rt_ms"] > 2 * light["std_rt_ms"]
        assert light_cv < 0.25
