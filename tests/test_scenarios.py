"""Scenario-plane tests: the matrix, its compiler, the interference-
shifted knee, open-loop SLO accounting, and the identity contracts
(jobs, kill+resume, schema migration)."""

import sqlite3

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import open_results, resume_campaign, run_scenario
from repro.core.bottleneck import colocation_of, interference_attribution
from repro.errors import ScenarioError
from repro.results.database import ResultsDatabase
from repro.scenarios import (
    SCENARIOS,
    Scenario,
    compile_scenario,
    get_scenario,
    list_scenarios,
    measured_knee,
    scenario_slo,
)
from repro.spec.tbl import parse as parse_tbl
from repro.workloads.arrivals import (
    ARRIVAL_KINDS,
    ArrivalSpec,
    arrival_trace,
)

OBSERVATION_TABLES = ("trials", "host_cpu", "state_metrics")


def observation_dump(database):
    assert database.integrity_check() == []
    return {table: database.dump_rows(table)
            for table in OBSERVATION_TABLES}


class TestMatrix:
    def test_table_has_the_headline_pair(self):
        names = [s.name for s in list_scenarios()]
        assert "dedicated-baseline" in names
        assert "consolidated-2x" in names
        assert "flash-crowd-slo" in names

    def test_unknown_name_lists_the_known_ones(self):
        with pytest.raises(ScenarioError, match="dedicated-baseline"):
            get_scenario("no-such-scenario")

    def test_every_row_compiles_and_round_trips_identity(self):
        for scenario in list_scenarios():
            spec = parse_tbl(compile_scenario(scenario))
            experiment = spec.experiments[0]
            assert experiment.scenario == scenario.name
            assert experiment.consolidation_ratio == \
                scenario.consolidation
            if scenario.arrival is None:
                assert experiment.arrival is None
            else:
                assert experiment.arrival.kind == \
                    scenario.arrival["kind"]
            assert experiment.workloads == scenario.workloads
            assert experiment.slo.response_time == pytest.approx(
                scenario.slo_response_ms / 1000.0)

    def test_adding_a_scenario_is_a_data_edit(self, monkeypatch):
        # The zero-code contract: one new table entry makes the name
        # resolvable, compilable, and checkable.
        entry = {
            "name": "added-by-table-entry",
            "description": "data-only addition",
            "topology": "1-2-1",
            "consolidation": 3,
            "arrival": {"kind": "bursty", "burst": 2.0},
            "workloads": (30,),
            "expects": {"knee_min": 0},
        }
        monkeypatch.setattr("repro.scenarios.SCENARIOS",
                            SCENARIOS + (entry,))
        scenario = get_scenario("added-by-table-entry")
        text = compile_scenario(scenario)
        assert 'scenario "added-by-table-entry";' in text
        assert "consolidation 3;" in text
        assert "arrival bursty" in text

    def test_unknown_expectation_key_is_rejected(self):
        with pytest.raises(ScenarioError, match="knee_mim"):
            Scenario(name="typo", description="x",
                     expects={"knee_mim": 10})

    def test_bad_arrival_is_rejected_at_the_table(self):
        with pytest.raises(ScenarioError, match="unknown arrival kind"):
            Scenario(name="bad", description="x",
                     arrival={"kind": "meteor"})


class _Killed(Exception):
    pass


@pytest.fixture(scope="module")
def headline():
    """The dedicated/consolidated pair, run once for the module."""
    return {
        "dedicated": run_scenario("dedicated-baseline"),
        "consolidated": run_scenario("consolidated-2x"),
    }


class TestInterferenceShiftedKnee:
    def test_both_scenarios_meet_their_expected_ranges(self, headline):
        assert headline["dedicated"].ok, headline["dedicated"].failures
        assert headline["consolidated"].ok, \
            headline["consolidated"].failures

    def test_consolidation_shifts_the_knee_left(self, headline):
        # The assertion comes from the scenario table itself: the two
        # expected ranges are disjoint, so a run that satisfies both
        # has demonstrated the interference-shifted knee.
        dedicated = get_scenario("dedicated-baseline")
        consolidated = get_scenario("consolidated-2x")
        assert consolidated.expects["knee_max"] < \
            dedicated.expects["knee_min"]
        knees = {}
        for key, scenario in (("dedicated", dedicated),
                              ("consolidated", consolidated)):
            rows = headline[key].report.database.query(
                scenario=scenario.name)
            knees[key] = measured_knee(rows, scenario_slo(scenario))
        assert knees["consolidated"] < knees["dedicated"]

    def test_colocation_lands_in_the_observation_rows(self, headline):
        rows = headline["consolidated"].report.database.query(
            scenario="consolidated-2x")
        top = max(rows, key=lambda r: r.workload)
        placement = colocation_of(top)
        assert placement, "consolidated trial recorded no physical rows"
        assert all(physical.startswith("phys-")
                   for physical, _cotenants in placement.values())
        # Three servers packed two-per-host: one pair shares, the odd
        # one out sits alone on its own physical host.
        assert any(cotenants
                   for _physical, cotenants in placement.values())
        dedicated_top = max(
            headline["dedicated"].report.database.query(
                scenario="dedicated-baseline"),
            key=lambda r: r.workload)
        assert colocation_of(dedicated_top) == {}

    def test_saturation_is_attributed_to_the_cotenant(self, headline):
        rows = headline["consolidated"].report.database.query(
            scenario="consolidated-2x")
        top = max(rows, key=lambda r: r.workload)
        attributions = interference_attribution(top)
        assert attributions
        assert all(a["cotenants"] for a in attributions)

    def test_query_filters_on_scenario(self, headline):
        database = headline["dedicated"].report.database
        named = database.query(scenario="dedicated-baseline")
        assert named and all(
            r.scenario == "dedicated-baseline" for r in named)
        assert database.query(scenario="consolidated-2x") == []


class TestOpenLoopScenarios:
    def test_flash_crowd_breaks_the_slo_with_backlog(self):
        outcome = run_scenario("flash-crowd-slo")
        assert outcome.ok, outcome.failures
        (row,) = outcome.report.database.query(
            scenario="flash-crowd-slo")
        assert row.metrics.backlog >= 100
        assert row.metrics.error_ratio > 0

    def test_sustainable_diurnal_meets_the_slo(self):
        outcome = run_scenario("diurnal-open-loop")
        assert outcome.ok, outcome.failures

    def test_jobs_do_not_change_the_bytes(self):
        serial = run_scenario("consolidated-burst")
        parallel = run_scenario("consolidated-burst", jobs=4)
        assert observation_dump(parallel.report.database) == \
            observation_dump(serial.report.database)

    def test_check_false_skips_the_verdicts(self):
        outcome = run_scenario("diurnal-open-loop", check=False)
        assert outcome.failures == []


class TestKillResume:
    @pytest.mark.parametrize("after", [1, 3])
    def test_killed_scenario_resumes_byte_identically(self, headline,
                                                      after):
        reference = observation_dump(
            headline["consolidated"].report.database)
        database = ResultsDatabase()
        seen = []

        def killer(result):
            seen.append(result)
            if len(seen) == after:
                raise _Killed

        with pytest.raises(_Killed):
            run_scenario("consolidated-2x", database=database,
                         on_result=killer)
        assert database.count() == after
        # The checkpointed TBL text carries the scenario settings, so
        # the ordinary resume path reproduces the remaining trials
        # without the scenario plane being involved at all.
        resume_campaign(database)
        assert observation_dump(database) == reference
        assert all(r.scenario == "consolidated-2x"
                   for r in database.query())


class TestSchemaMigration:
    def _downgrade(self, path):
        """Strip backlog+scenario, reproducing a pre-scenario file."""
        kept = ("id, experiment_name, benchmark, platform, topology, "
                "workload, write_ratio, seed, status, "
                "completed_requests, errors, timeouts, rejections, "
                "duration_s, throughput, mean_response_s, "
                "p50_response_s, p90_response_s, p99_response_s, "
                "collected_bytes, script_lines, config_lines, "
                "generated_files, machine_count, fidelity")
        connection = sqlite3.connect(path)
        with connection:
            connection.execute("PRAGMA foreign_keys=OFF")
            connection.execute("PRAGMA legacy_alter_table=ON")
            connection.execute(
                "ALTER TABLE trials RENAME TO trials_current")
            connection.execute("""
                CREATE TABLE trials (
                    id INTEGER PRIMARY KEY AUTOINCREMENT,
                    experiment_name TEXT NOT NULL,
                    benchmark TEXT NOT NULL, platform TEXT NOT NULL,
                    topology TEXT NOT NULL, workload INTEGER NOT NULL,
                    write_ratio REAL NOT NULL, seed INTEGER NOT NULL,
                    status TEXT NOT NULL,
                    completed_requests INTEGER NOT NULL,
                    errors INTEGER NOT NULL, timeouts INTEGER NOT NULL,
                    rejections INTEGER NOT NULL,
                    duration_s REAL NOT NULL, throughput REAL NOT NULL,
                    mean_response_s REAL NOT NULL,
                    p50_response_s REAL NOT NULL,
                    p90_response_s REAL NOT NULL,
                    p99_response_s REAL NOT NULL,
                    collected_bytes INTEGER NOT NULL,
                    script_lines INTEGER NOT NULL,
                    config_lines INTEGER NOT NULL,
                    generated_files INTEGER NOT NULL,
                    machine_count INTEGER NOT NULL,
                    fidelity TEXT NOT NULL DEFAULT 'des',
                    UNIQUE (experiment_name, topology, workload,
                            write_ratio, seed, fidelity)
                )""")
            connection.execute(
                f"INSERT INTO trials SELECT {kept} FROM trials_current")
            connection.execute("DROP TABLE trials_current")
        connection.close()

    def test_pre_scenario_database_migrates_in_place(self, tmp_path):
        path = tmp_path / "legacy.db"
        with open_results(path) as database:
            run_scenario("diurnal-open-loop", database=database)
            before = [(r.experiment_name, r.workload, r.fidelity)
                      for r in database.query()]
        self._downgrade(path)
        with open_results(path) as migrated:
            assert migrated.has_column("trials", "scenario")
            assert migrated.has_column("trials", "backlog")
            rows = migrated.query()
            assert [(r.experiment_name, r.workload, r.fidelity)
                    for r in rows] == before
            # Pre-scenario rows were plain sweep points by construction.
            assert {r.scenario for r in rows} == {""}
            assert {r.metrics.backlog for r in rows} == {0}
            assert all(len(key) == 7
                       for key in migrated.trial_keys())
            assert migrated.integrity_check() == []

    def test_report_notes_a_database_without_the_column(self,
                                                        monkeypatch):
        # Opening always migrates the column in, so the guard only
        # fires for trials tables written by foreign tools; simulate
        # one rather than hand-crafting a whole schema.
        from repro.obs.report import render_scenarios

        database = ResultsDatabase()
        monkeypatch.setattr(database, "has_column",
                            lambda table, column: False)
        note = render_scenarios(database)
        assert "predates the scenario plane" in note

    def test_trial_keys_carry_scenario_identity(self, headline):
        keys = headline["dedicated"].report.database.trial_keys()
        assert keys and all(
            key[-1] == "dedicated-baseline" for key in keys)


class TestScenarioCli:
    def test_list_shows_the_matrix(self, capsys):
        from repro.cli import main

        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        assert "dedicated-baseline" in out
        assert "flash-crowd-slo" in out
        assert "knee_min=240" in out

    def test_run_checks_and_stores(self, tmp_path, capsys):
        from repro.cli import main

        db = tmp_path / "scenario.db"
        assert main(["scenarios", "run", "diurnal-open-loop",
                     "--db", str(db), "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "expectations met" in out
        with open_results(db, create=False) as database:
            rows = database.query(scenario="diurnal-open-loop")
            assert rows and rows[0].scenario == "diurnal-open-loop"
            cards = database.run_cards()
            assert cards[-1]["parameters"]["scenarios"] == \
                ["diurnal-open-loop"]

    def test_run_unknown_scenario_fails_cleanly(self, capsys):
        from repro.cli import main

        assert main(["scenarios", "run", "nope"]) == 1
        assert "unknown scenario" in capsys.readouterr().err


# -- arrival-process determinism (property tests) -----------------------

@settings(max_examples=15, deadline=None)
@given(kind=st.sampled_from(ARRIVAL_KINDS),
       seed=st.integers(min_value=0, max_value=2**31 - 1),
       rate=st.floats(min_value=0.5, max_value=20.0))
def test_arrival_trace_is_a_pure_function_of_seed(kind, seed, rate):
    spec = ArrivalSpec(kind=kind)
    first = arrival_trace(spec, base_rate=rate, seed=seed, span=60.0)
    second = arrival_trace(spec, base_rate=rate, seed=seed, span=60.0)
    assert first == second
    assert all(b > a for a, b in zip(first, first[1:]))
    assert all(0.0 <= t < 60.0 for t in first)


@settings(max_examples=10, deadline=None)
@given(kind=st.sampled_from(ARRIVAL_KINDS),
       seed=st.integers(min_value=0, max_value=2**20))
def test_arrival_trace_depends_on_the_seed(kind, seed):
    spec = ArrivalSpec(kind=kind)
    first = arrival_trace(spec, base_rate=5.0, seed=seed, span=60.0)
    second = arrival_trace(spec, base_rate=5.0, seed=seed + 1, span=60.0)
    assert first != second
