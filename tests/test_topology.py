"""Tests for the w-a-d topology notation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SpecError
from repro.spec.topology import (
    TIER_ORDER,
    Topology,
    topology_grid,
    topology_range,
)


class TestParse:
    def test_parse_baseline(self):
        assert Topology.parse("1-1-1") == Topology(1, 1, 1)

    def test_parse_scale_out(self):
        topo = Topology.parse("1-8-2")
        assert (topo.web, topo.app, topo.db) == (1, 8, 2)

    def test_parse_strips_whitespace(self):
        assert Topology.parse("  1-2-1 ") == Topology(1, 2, 1)

    @pytest.mark.parametrize("bad", ["1-1", "1-1-1-1", "a-b-c", "1.5-1-1", ""])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(SpecError):
            Topology.parse(bad)

    def test_rejects_negative_counts(self):
        with pytest.raises(SpecError):
            Topology(1, -1, 1)

    def test_rejects_zero_app_tier(self):
        with pytest.raises(SpecError):
            Topology(1, 0, 1)

    def test_rejects_zero_db_tier(self):
        with pytest.raises(SpecError):
            Topology(1, 1, 0)

    def test_zero_web_tier_allowed(self):
        # RUBBoS is effectively 2-tier; a web-less topology is legal.
        assert Topology(0, 1, 1).web == 0


class TestAccessors:
    def test_label_roundtrip(self):
        assert Topology.parse("1-12-3").label() == "1-12-3"

    def test_count(self):
        topo = Topology(1, 8, 2)
        assert [topo.count(t) for t in TIER_ORDER] == [1, 8, 2]

    def test_count_unknown_tier(self):
        with pytest.raises(SpecError):
            Topology(1, 1, 1).count("cache")

    def test_with_count(self):
        assert Topology(1, 1, 1).with_count("app", 5) == Topology(1, 5, 1)

    def test_scaled_defaults_to_one(self):
        assert Topology(1, 7, 1).scaled("db") == Topology(1, 7, 2)

    def test_total_servers(self):
        assert Topology(1, 8, 2).total_servers() == 11

    def test_machine_count_adds_client_and_control(self):
        assert Topology(1, 1, 1).machine_count() == 5

    def test_server_names_are_one_based(self):
        assert Topology(1, 3, 1).server_names("app") == ["app1", "app2", "app3"]

    def test_all_server_names_order(self):
        names = Topology(1, 2, 1).all_server_names()
        assert names == ["web1", "app1", "app2", "db1"]

    def test_dominates(self):
        assert Topology(1, 8, 2).dominates(Topology(1, 2, 1))
        assert not Topology(1, 2, 3).dominates(Topology(1, 3, 1))


class TestRanges:
    def test_topology_range_grows_one_tier(self):
        ladder = list(topology_range(Topology(1, 1, 1), "app", 4))
        assert [t.label() for t in ladder] == [
            "1-1-1", "1-2-1", "1-3-1", "1-4-1"
        ]

    def test_topology_range_rejects_shrinking(self):
        with pytest.raises(SpecError):
            list(topology_range(Topology(1, 5, 1), "app", 3))

    def test_topology_grid_covers_paper_family(self):
        grid = list(topology_grid(1, range(2, 9), range(1, 4)))
        assert len(grid) == 7 * 3
        assert grid[0].label() == "1-2-1"
        assert grid[-1].label() == "1-8-3"


@given(
    web=st.integers(min_value=0, max_value=4),
    app=st.integers(min_value=1, max_value=16),
    db=st.integers(min_value=1, max_value=4),
)
def test_label_parse_is_identity(web, app, db):
    topo = Topology(web, app, db)
    assert Topology.parse(topo.label()) == topo


@given(
    app=st.integers(min_value=1, max_value=16),
    delta=st.integers(min_value=1, max_value=8),
)
def test_scaled_monotone(app, delta):
    base = Topology(1, app, 1)
    grown = base.scaled("app", delta)
    assert grown.dominates(base)
    assert grown.total_servers() == base.total_servers() + delta
