"""Integration tests: the experiment runner and sweep construction."""

import pytest

from repro.experiments import COMPLETED, DNF, \
    build_experiment, measurement_window
from repro.experiments.figures import estimate_collected_bytes, make_runner
from repro.spec.tbl import TrialPhases
from repro.spec.topology import Topology


@pytest.fixture(scope="module")
def runner():
    return make_runner("emulab", "rubis", node_count=16)


def _experiment(name="itest", topologies=(Topology(1, 1, 1),),
                workloads=(100,), write_ratios=(0.15,), scale=0.1,
                **kwargs):
    experiment, _tbl = build_experiment(
        name=name, benchmark="rubis", platform="emulab",
        topologies=topologies, workloads=workloads,
        write_ratios=write_ratios, scale=scale, **kwargs,
    )
    return experiment


class TestBuildExperiment:
    def test_roundtrips_through_tbl(self):
        experiment, tbl = build_experiment(
            name="x", benchmark="rubis", platform="emulab",
            topologies=[Topology(1, 2, 1)], workloads=(100, 200),
            scale=0.1,
        )
        assert "experiment \"x\"" in tbl
        assert experiment.trial.run == pytest.approx(30.0)
        assert experiment.workloads == (100, 200)

    def test_scale_shrinks_phases_with_warmup_floor(self):
        # Run/cool-down scale; warm-up is floored at two think times.
        experiment = _experiment(scale=0.05)
        assert experiment.trial == TrialPhases(14.0, 15.0, 3.0)

    def test_warmup_floor_can_be_lowered(self):
        experiment = _experiment(scale=0.05, min_warmup=0.0)
        assert experiment.trial == TrialPhases(3.0, 15.0, 3.0)

    def test_measurement_window(self):
        experiment = _experiment(scale=0.1)
        assert measurement_window(experiment.trial) == (14.0, 44.0)


class TestRunner:
    def test_light_load_trial_completes(self, runner):
        result = runner.run_point(_experiment(), Topology(1, 1, 1),
                                  100, 0.15)
        assert result.status == COMPLETED
        assert result.metrics.completed > 100
        assert result.metrics.error_ratio < 0.02
        assert result.response_time_ms() < 200
        assert result.machine_count == 5
        assert result.script_lines > 100
        assert result.collected_bytes > 1000

    def test_tier_cpu_recorded(self, runner):
        result = runner.run_point(_experiment(), Topology(1, 1, 1),
                                  220, 0.15)
        assert result.tier_cpu("app") > result.tier_cpu("db")
        assert result.tier_cpu("app") > 50
        assert result.bottleneck_tier() == "app"

    def test_overload_records_dnf(self, runner):
        result = runner.run_point(_experiment(), Topology(1, 1, 1),
                                  900, 0.15)
        assert result.status == DNF
        assert result.metrics.error_ratio > 0.10

    def test_nodes_released_after_trial(self, runner):
        free_before = runner.cluster.free_count()
        runner.run_point(_experiment(), Topology(1, 2, 1), 100, 0.15)
        assert runner.cluster.free_count() == free_before

    def test_nodes_released_even_for_dnf(self, runner):
        free_before = runner.cluster.free_count()
        runner.run_point(_experiment(), Topology(1, 1, 1), 900, 0.15)
        assert runner.cluster.free_count() == free_before

    def test_run_experiment_covers_all_points(self, runner):
        experiment = _experiment(workloads=(50, 100),
                                 write_ratios=(0.0, 0.3))
        seen = []
        results = runner.run_experiment(
            experiment, on_result=lambda r: seen.append(r.key()))
        assert len(results) == 4
        assert len(seen) == 4
        assert len({r.key() for r in results}) == 4

    def test_scale_out_moves_knee(self, runner):
        experiment = _experiment(topologies=(Topology(1, 1, 1),
                                             Topology(1, 2, 1)),
                                 workloads=(400,))
        results = runner.run_experiment(experiment)
        by_topology = {r.topology_label: r for r in results}
        assert by_topology["1-2-1"].response_time_ms() < \
            by_topology["1-1-1"].response_time_ms() / 3

    def test_db_node_type_honoured(self):
        runner = make_runner("emulab", "rubis", db_node_type="emulab-low",
                             node_count=16)
        experiment = _experiment(db_node_type="emulab_low",
                                 workloads=(150,), write_ratios=(0.9,))
        result = runner.run_point(experiment, Topology(1, 1, 1), 150, 0.9)
        # On the 600 MHz node the DB dominates at a 90% write mix.
        assert result.tier_cpu("db") > result.tier_cpu("app")

    def test_determinism_across_runs(self, runner):
        experiment = _experiment(workloads=(150,), seed=9)
        first = runner.run_point(experiment, Topology(1, 1, 1), 150, 0.15)
        second = runner.run_point(experiment, Topology(1, 1, 1), 150, 0.15)
        assert first.metrics.mean_response_s == \
            second.metrics.mean_response_s
        assert first.metrics.completed == second.metrics.completed


class TestEstimates:
    def test_collected_bytes_scale_with_topology(self):
        experiment = _experiment(scale=1.0)
        small = estimate_collected_bytes(experiment, Topology(1, 1, 1), 100)
        large = estimate_collected_bytes(experiment, Topology(1, 8, 2), 100)
        assert large > small

    def test_collected_bytes_scale_with_workload(self):
        experiment = _experiment(scale=1.0)
        light = estimate_collected_bytes(experiment, Topology(1, 1, 1), 100)
        heavy = estimate_collected_bytes(experiment, Topology(1, 1, 1),
                                         2000)
        assert heavy > light
