"""Tests for the whole-suite driver and the ASCII chart renderer."""

import pytest

from repro.experiments.papersuite import (
    FIGURE_IDS,
    SUITE,
    reproduce,
    reproduce_all,
)
from repro.results import ResultsDatabase
from repro.results.report import render_ascii_chart


class TestSuiteInventory:
    def test_every_paper_artifact_covered(self):
        for expected in (
                "figure1", "figure2", "figure3", "figure4", "figure5",
                "figure6", "figure7", "figure8", "table1", "table2",
                "table3", "table4", "table5", "table6", "table7"):
            assert expected in FIGURE_IDS

    def test_supplemental_sets_included(self):
        assert "supplemental_rubbos_scaleout" in FIGURE_IDS
        assert "supplemental_weblogic_scaleout" in FIGURE_IDS

    def test_ids_unique(self):
        assert len(set(FIGURE_IDS)) == len(FIGURE_IDS)

    def test_entries_well_formed(self):
        for name, fn, scaled in SUITE:
            assert callable(fn)
            assert isinstance(scaled, bool)


class TestReproduce:
    def test_single_cheap_reproduction(self):
        figure = reproduce("table5")
        assert figure.figure_id == "table5"
        assert "workers2" in figure.rendered

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            reproduce("figure99")

    def test_reproduce_all_subset(self, tmp_path):
        messages = []
        with ResultsDatabase() as db:
            results = reproduce_all(
                output_dir=tmp_path, database=db,
                on_progress=messages.append,
                only=("table4", "table5"),
            )
            assert set(results) == {"table4", "table5"}
            assert (tmp_path / "table4.txt").is_file()
            assert (tmp_path / "table5.txt").is_file()
            # Generation-only tables contribute no trials.
            assert db.count() == 0
        assert any("running table4" in m for m in messages)

    def test_reproduce_all_stores_trials(self, tmp_path):
        with ResultsDatabase() as db:
            results = reproduce_all(
                database=db, scale=0.04, only=("table6",),
            )
            assert db.count() == len(results["table6"].results) > 0


class TestAsciiChart:
    def test_chart_contains_axes_and_legend(self):
        chart = render_ascii_chart(
            "demo", {"1-1-1": [(100, 10.0), (200, 50.0), (300, 400.0)]},
        )
        assert "demo" in chart
        assert "* 1-1-1" in chart
        assert "400" in chart          # y max label
        assert "100" in chart and "300" in chart

    def test_chart_multiple_series_distinct_glyphs(self):
        chart = render_ascii_chart(
            "demo", {"a": [(1, 1.0)], "b": [(1, 2.0)]},
        )
        assert "* a" in chart and "o b" in chart

    def test_chart_empty(self):
        assert "(no data)" in render_ascii_chart("demo", {"a": []})

    def test_chart_monotone_series_descends_visually(self):
        series = {"s": [(i, float(i)) for i in range(1, 11)]}
        chart = render_ascii_chart("demo", series, width=20, height=8)
        lines = chart.splitlines()[1:9]
        first_star = [line.index("*") for line in lines if "*" in line]
        # Higher values render on earlier (upper) rows at later columns.
        assert first_star == sorted(first_star, reverse=True)


class TestCliIntegration:
    def test_cli_figure_all_subset_smoke(self, tmp_path, capsys):
        # 'all' is exercised through the library path above; here the
        # CLI single-figure path with --out.
        from repro.cli import main
        status = main(["figure", "--id", "table4", "--out",
                       str(tmp_path)])
        assert status == 0
        assert (tmp_path / "table4.txt").is_file()

    def test_cli_report_chart(self, tmp_path, capsys):
        from repro.cli import main
        tbl = tmp_path / "spec.tbl"
        tbl.write_text("""
        benchmark rubis; platform emulab;
        experiment "c" { topology 1-1-1; workload 100, 200;
                         trial { warmup 14s; run 10s; cooldown 2s; } }
        """)
        db = tmp_path / "obs.sqlite"
        main(["run", "--tbl", str(tbl), "--db", str(db), "--nodes", "8",
              "--quiet"])
        capsys.readouterr()
        status = main(["report", "--db", str(db), "--chart"])
        assert status == 0
        out = capsys.readouterr().out
        assert "* 1-1-1" in out
