"""Remediation-plane tests: detect -> propose -> verify -> schedule.

The acceptance bar mirrors the fault plane's: every heal decision is a
pure function of recorded observations, so a ``repro heal`` at jobs=1
and jobs=N — and a heal killed at any cut point and re-run — must
leave byte-identical ``remediations`` and trial tables behind.  The
loop must also always explain itself: when nothing can be done, the
report carries the proposer's rejections and the capacity planner's
infeasibility verdict instead of a silent no-op.
"""

import pytest

from repro import FaultPlan, FaultSpec, RetryPolicy, run_campaign
from repro.errors import RemedyError
from repro.faults import EVERY_ATTEMPT
from repro.remedy import (
    BUDGET_EXHAUSTED,
    HEALED,
    HEALTHY,
    INJECTED_FAULT,
    NO_CANDIDATE,
    PROMOTE_TIER,
    QUARANTINE,
    RELEASE_HOST,
    REPLACE_HOST,
    SLO_VIOLATION,
    Detector,
    Diagnosis,
    Proposer,
    apply_patch,
    heal_campaign,
    progression_supported,
)
from repro.results.database import ResultsDatabase
from repro.sim import DES
from repro.spec.tbl import parse as parse_tbl

FAULTED_TBL = """
benchmark rubis; platform emulab;
experiment "healdemo" {
    topology 1-1-1;
    workload 50, 100, 150, 200;
    write_ratio 15%;
    trial { warmup 3s; run 15s; cooldown 3s; }
}
"""

KNEE_TBL = """
benchmark rubis; platform emulab;
experiment "knee" {
    topology 1-1-1;
    workload 200, 400;
    write_ratio 15%;
    trial { warmup 3s; run 15s; cooldown 3s; }
}
"""

#: A persistent, non-transient crash pinned to node-1: the first two
#: rungs DNF (and quarantine the host) before the ladder shifts to
#: node-2 — the canonical "faulty machine" a heal must replace.
CRASH_PLAN = FaultPlan([FaultSpec(kind="host-crash", target="node-1",
                                  rate=1.0, attempts=EVERY_ATTEMPT,
                                  transient=False)], seed=3)
CRASH_RETRY = RetryPolicy(max_attempts=2, quarantine_after=2)

#: Byte-identity covers the science, the chaos record, and the heal's
#: own decision log.
HEAL_TABLES = ("trials", "host_cpu", "state_metrics", "failures",
               "remediations")


def faulted_db():
    database = ResultsDatabase()
    run_campaign(FAULTED_TBL, database=database, faults=CRASH_PLAN,
                 retry=CRASH_RETRY)
    return database


def heal_dump(database):
    assert database.integrity_check() == []
    return {table: database.dump_rows(table) for table in HEAL_TABLES}


@pytest.fixture(scope="module")
def faulted_heal():
    """The reference: a faulted campaign healed sequentially."""
    database = faulted_db()
    report = heal_campaign(database, jobs=1)
    return database, report, heal_dump(database)


# ---------------------------------------------------------------------------
# Detector


class TestDetector:
    def test_faulted_ladder_yields_fault_and_quarantine(self,
                                                        faulted_heal):
        database, _report, _dump = faulted_heal
        spec = parse_tbl(FAULTED_TBL)
        experiment = spec.experiment("healdemo")
        baseline = database.query(experiment_name="healdemo",
                                  fidelity=DES)
        diagnoses = Detector(experiment.slo).diagnose(baseline)
        kinds = [d.kind for d in diagnoses]
        assert kinds == [INJECTED_FAULT, QUARANTINE]
        fault, sentence = diagnoses
        assert fault.host == "node-1"
        assert fault.fault_kind == "host-crash"
        assert fault.workload == 50          # the knee, not every rung
        assert "blamed on node-1" in fault.evidence
        assert sentence.host == "node-1"
        assert sentence.evidence.count("quarantined") == 1

    def test_healthy_ladder_yields_nothing(self):
        report = run_campaign(KNEE_TBL)
        spec = parse_tbl(KNEE_TBL)
        experiment = spec.experiment("knee")
        results = [r for r in report.database.query()
                   if r.workload <= 200]
        assert Detector(experiment.slo,
                        target=200).diagnose(results) == []

    def test_no_observations_is_an_error(self):
        spec = parse_tbl(FAULTED_TBL)
        detector = Detector(spec.experiment("healdemo").slo)
        with pytest.raises(RemedyError, match="no observations"):
            detector.diagnose([])


# ---------------------------------------------------------------------------
# Proposer


def _experiment(tbl, name):
    return parse_tbl(tbl).experiment(name)


class TestProposer:
    def test_fault_diagnoses_become_host_patches(self, faulted_heal):
        database, _report, _dump = faulted_heal
        experiment = _experiment(FAULTED_TBL, "healdemo")
        baseline = database.query(experiment_name="healdemo",
                                  fidelity=DES)
        diagnoses = Detector(experiment.slo).diagnose(baseline)
        proposer = Proposer(experiment, CRASH_PLAN, 36)
        candidates, rejections = proposer.propose(diagnoses)
        assert [c.kind for c in candidates] == [REPLACE_HOST,
                                                RELEASE_HOST]
        assert rejections == []
        replace, release = candidates
        assert replace.target == "node-1"
        assert replace.drop_faults == (0,)   # the crash spec's index
        assert release.probation > 0

    def test_saturation_promotes_within_node_budget(self):
        experiment = _experiment(KNEE_TBL, "knee")
        diagnosis = Diagnosis(kind="saturation", experiment="knee",
                              topology="1-1-1", write_ratio=0.15,
                              workload=400, tier="app",
                              evidence="app tier saturated")
        candidates, rejections = Proposer(experiment, None,
                                          36).propose([diagnosis])
        assert [c.new_topology for c in candidates] == ["1-2-1", "1-3-1"]
        assert all(c.kind == PROMOTE_TIER for c in candidates)
        assert rejections == []
        # A 5-node cluster fits neither promotion.
        candidates, rejections = Proposer(experiment, None,
                                          5).propose([diagnosis])
        assert candidates == []
        assert len(rejections) == 2
        assert "5 nodes" in rejections[0].reason

    def test_typed_pool_probe_can_veto_a_promotion(self):
        experiment = _experiment(KNEE_TBL, "knee")
        diagnosis = Diagnosis(kind="saturation", experiment="knee",
                              topology="1-1-1", write_ratio=0.15,
                              tier="db", evidence="db tier saturated")
        proposer = Proposer(
            experiment, None, 36,
            allocatable=lambda t: f"no spare db node for {t.label()}"
                if t.db > 1 else None)
        candidates, rejections = proposer.propose([diagnosis])
        assert candidates == []
        assert all("no spare db node" in r.reason for r in rejections)

    def test_untraceable_fault_and_unknown_kind_are_rejected(self):
        experiment = _experiment(FAULTED_TBL, "healdemo")
        orphan = Diagnosis(kind=INJECTED_FAULT, experiment="healdemo",
                           topology="1-1-1", write_ratio=0.15,
                           fault_kind="monitor-truncate", host="node-9",
                           evidence="DNF")
        mystery = Diagnosis(kind=SLO_VIOLATION, experiment="healdemo",
                            topology="1-1-1", write_ratio=0.15,
                            evidence="slow with no saturated tier")
        candidates, rejections = Proposer(experiment, CRASH_PLAN,
                                          36).propose([orphan, mystery])
        assert candidates == []
        assert "untraceable" in rejections[0].reason
        assert "no remediation rule" in rejections[1].reason


class TestApplyPatch:
    def test_patches_are_pure(self):
        experiment = _experiment(FAULTED_TBL, "healdemo")
        diagnoses = [Diagnosis(kind=QUARANTINE, experiment="healdemo",
                               topology="1-1-1", write_ratio=0.15,
                               fault_kind="host-crash", host="node-1",
                               evidence="quarantined")]
        (release,), _ = Proposer(experiment, CRASH_PLAN,
                                 36).propose(diagnoses)
        topologies = tuple(experiment.topologies)
        retry = CRASH_RETRY
        new_topos, new_plan, new_retry = apply_patch(
            release, topologies, CRASH_PLAN, retry)
        # The crash spec targeting node-1 is stripped; the original
        # plan and policy objects are untouched.
        assert new_plan is None or not new_plan.specs
        assert len(CRASH_PLAN.specs) == 1
        assert new_retry.probation_trials == release.probation
        assert retry.probation_trials == 0
        assert new_topos == topologies


# ---------------------------------------------------------------------------
# The closed loop, end to end


class TestHealEndToEnd:
    def test_faulted_campaign_heals(self, faulted_heal):
        database, report, _dump = faulted_heal
        assert report.outcome == HEALED
        assert report.healthy
        assert report.baseline_supported == 0
        assert report.healed_supported == 200 == report.target
        assert [p.kind for p in report.applied] == [REPLACE_HOST]
        assert report.final_experiment == "healdemo@healed.r1"
        healed = database.query(
            experiment_name="healdemo@healed.r1", fidelity=DES)
        assert len(healed) == 4
        assert all(r.completed for r in healed)
        assert "supported 0 -> 200 of 200 users" in report.summary()
        assert "applied: replace host node-1" in report.describe()

    def test_remediations_log_tells_the_whole_story(self, faulted_heal):
        database, _report, _dump = faulted_heal
        stages = [(row[0], row[2], row[3])
                  for row in database.dump_rows("remediations")]
        assert stages == [
            (1, "diagnosis", INJECTED_FAULT),
            (1, "diagnosis", QUARANTINE),
            (1, "candidate", REPLACE_HOST),
            (1, "candidate", RELEASE_HOST),
            (1, "verdict", REPLACE_HOST),
            (1, "verdict", RELEASE_HOST),
            (1, "confirm", REPLACE_HOST),
            (1, "apply", REPLACE_HOST),
            (1, "remeasure", "ladder"),
            (2, "outcome", HEALED),
        ]
        assert database.remediation_count() == 10

    def test_heal_parameters_persist_for_resume(self, faulted_heal):
        database, report, _dump = faulted_heal
        assert database.get_meta("heal_experiment") == "healdemo"
        assert database.get_meta("heal_target") == "200"
        assert database.get_meta("heal_outcome") == HEALED
        assert "replace-host" in database.get_meta("heal_patches")
        assert report.spent <= report.budget

    def test_healthy_campaign_is_a_no_op_heal(self):
        database = ResultsDatabase()
        run_campaign(FAULTED_TBL, database=database)
        report = heal_campaign(database, jobs=1)
        assert report.outcome == HEALTHY
        assert report.applied == []
        assert report.trials == 0
        stages = [row[2] for row in database.dump_rows("remediations")]
        assert stages == ["outcome"]

    def test_saturation_heals_by_promotion(self):
        database = ResultsDatabase()
        run_campaign(KNEE_TBL, database=database)
        lines = []
        report = heal_campaign(database, jobs=2,
                               on_progress=lines.append)
        assert report.outcome == HEALED
        (patch,) = report.applied
        assert patch.kind == PROMOTE_TIER
        assert patch.target == "app"
        assert patch.new_topology in ("1-2-1", "1-3-1")
        assert report.baseline_supported == 200
        assert report.healed_supported == 400
        # The analytic pre-screen ran (free) before the DES confirm.
        prescreen = database.query(fidelity="analytic")
        assert any("@r1.c" in r.experiment_name for r in prescreen)
        assert any("saturated" in line for line in lines)

    def test_unfit_cluster_surfaces_infeasibility(self):
        database = ResultsDatabase()
        run_campaign(KNEE_TBL, database=database, node_count=7)
        report = heal_campaign(database, jobs=1)
        assert report.outcome == NO_CANDIDATE
        assert not report.healthy
        # Satellite (f): the typed-pool rejections AND the capacity
        # planner's InfeasiblePlan verdict both reach the report.
        assert any("'emulab-high'" in reason
                   for reason in report.reasons)
        assert any("infeasible" in reason for reason in report.reasons)
        assert report.describe().count("why not:") >= 2
        stages = [row[2] for row in database.dump_rows("remediations")]
        assert "infeasible" in stages

    def test_budget_exhaustion_is_explicit_and_persisted(self):
        database = faulted_db()
        report = heal_campaign(database, jobs=1, budget=1)
        assert report.outcome == BUDGET_EXHAUSTED
        assert report.spent == 1
        assert any("budget 1" in reason for reason in report.reasons)
        # A re-run with no arguments replays under the stored budget.
        again = heal_campaign(database, jobs=1)
        assert again.outcome == BUDGET_EXHAUSTED
        assert again.budget == 1


class TestHealErrors:
    def test_heal_needs_a_campaign(self):
        with pytest.raises(Exception, match="campaign meta"):
            heal_campaign(ResultsDatabase())

    def test_heal_needs_des_observations(self):
        database = ResultsDatabase()
        run_campaign(FAULTED_TBL, database=database, fidelity="analytic")
        with pytest.raises(RemedyError, match="no DES observations"):
            heal_campaign(database)

    def test_parameters_are_validated(self):
        database = faulted_db()
        with pytest.raises(RemedyError, match="heal_budget"):
            heal_campaign(database, budget=0)
        with pytest.raises(RemedyError, match="lowest rung"):
            heal_campaign(database, target=10)


# ---------------------------------------------------------------------------
# Determinism: worker count, kill + resume


class StopHeal(Exception):
    pass


class TestHealDeterminism:
    def test_parallel_heal_matches_sequential(self, faulted_heal):
        _db, _report, reference = faulted_heal
        database = faulted_db()
        report = heal_campaign(database, jobs=4)
        assert report.outcome == HEALED
        assert heal_dump(database) == reference

    def test_repeated_heal_is_idempotent(self, faulted_heal):
        database, first, reference = faulted_heal
        again = heal_campaign(database, jobs=1)
        assert again.outcome == first.outcome
        assert again.trials == 0
        assert again.reused == first.trials + first.reused
        assert heal_dump(database) == reference

    @pytest.mark.parametrize("cut_after", [1, 3])
    def test_killed_heal_resumes_byte_identically(self, faulted_heal,
                                                  cut_after):
        _db, first, reference = faulted_heal
        database = faulted_db()
        executed = []

        def interrupt(result):
            executed.append(result)
            if len(executed) == cut_after:
                raise StopHeal

        with pytest.raises(StopHeal):
            heal_campaign(database, jobs=1, on_trial=interrupt)
        assert len(executed) == cut_after
        report = heal_campaign(database, jobs=1)
        assert report.outcome == HEALED
        assert report.reused >= cut_after
        assert report.trials == first.trials - cut_after
        assert heal_dump(database) == reference


class TestHealCli:
    def test_heal_cli_local(self, tmp_path, capsys):
        from repro.cli import main

        db = str(tmp_path / "faulted.sqlite")
        database = ResultsDatabase(db)
        run_campaign(FAULTED_TBL, database=database, faults=CRASH_PLAN,
                     retry=CRASH_RETRY)
        database.close()
        assert main(["heal", db, "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "heal healed" in out
        assert "applied: replace host node-1" in out
        assert f"remediation log stored in {db}" in out

    def test_heal_cli_missing_db_is_an_error(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["heal", str(tmp_path / "nope.sqlite")]) == 1
        assert "no results database" in capsys.readouterr().err


class TestProgressionSupported:
    def test_holes_do_not_count_as_support(self, faulted_heal):
        database, _report, _dump = faulted_heal
        experiment = _experiment(FAULTED_TBL, "healdemo")
        baseline = database.query(experiment_name="healdemo",
                                  fidelity=DES)
        # Rungs 150/200 pass on node-2, but the ladder's first rungs
        # DNF — supported load is 0, not 200.
        assert any(r.completed for r in baseline)
        assert progression_supported(baseline, experiment.slo) == 0
        healed = database.query(
            experiment_name="healdemo@healed.r1", fidelity=DES)
        assert progression_supported(healed, experiment.slo) == 200
