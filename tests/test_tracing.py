"""Tests for the lifecycle flight recorder (repro.obs) and the
repro.api facade.

The load-bearing guarantees: every traced trial carries a full
eight-phase span tree; spans round-trip through the results database;
and — the PR 1 contract extended — a ``jobs=4`` run *with tracing on*
stores byte-identical observation tables to a ``jobs=1`` run with
tracing off.
"""

import warnings

import pytest

from repro.api import (
    open_results,
    run_campaign,
    run_experiment,
    trace_report,
)
from repro.core import ObservationCampaign
from repro.deploy import DeploymentEngine
from repro.errors import ExperimentError, ReproError, ResultsError
from repro.experiments import ExperimentRunner, build_experiment
from repro.experiments.figures import make_runner
from repro.experiments.scheduler import TrialScheduler
from repro.obs import (
    NULL_TRACER,
    TRIAL_PHASES,
    Tracer,
    as_tracer,
    flatten_span,
)
from repro.obs.report import phase_durations
from repro.results import ResultsDatabase
from repro.spec.topology import Topology
from repro.vcluster import VirtualCluster

SMALL_TBL = """
benchmark rubis;
platform emulab;
experiment "traced" {
    topology 1-1-1;
    workload 100, 200;
    write_ratio 15%;
    trial { warmup 3s; run 6s; cooldown 1s; }
}
"""


def small_experiment(workloads=(100,), repetitions=1, seed=42):
    experiment, _tbl = build_experiment(
        name="traced", benchmark="rubis", platform="emulab",
        topologies=(Topology(1, 1, 1),), workloads=workloads,
        write_ratios=(0.15,), repetitions=repetitions, seed=seed,
        scale=0.05, min_warmup=3.0,
    )
    return experiment


class TestTracerCore:
    def test_nested_spans_flatten_in_dfs_preorder(self):
        tracer = Tracer()
        with tracer.span("trial", experiment="e") as root:
            with tracer.span("deploy"):
                with tracer.span("script", path="run.sh"):
                    pass
            with tracer.span("simulate"):
                pass
        records = tracer.export(root)
        assert [(r.span_id, r.parent_id, r.name) for r in records] == [
            (1, 0, "trial"), (2, 1, "deploy"), (3, 2, "script"),
            (4, 1, "simulate"),
        ]
        assert records[0].attributes == {"experiment": "e"}
        assert all(r.duration_s >= 0 for r in records)

    def test_annotate_targets_innermost_open_span(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                tracer.annotate(depth=2)
            tracer.annotate(depth=1)
        assert inner.attributes == {"depth": 2}
        assert outer.attributes == {"depth": 1}

    def test_exception_marks_span_errored_but_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("trial") as root:
                with tracer.span("deploy"):
                    raise ValueError("boom")
        records = flatten_span(root)
        assert records[1].status == "error"
        assert records[1].attributes["error"] == "ValueError"

    def test_counters_are_cumulative_and_signed(self):
        tracer = Tracer()
        tracer.count("tasks", 3)
        tracer.count("tasks", -1)
        assert tracer.counter("tasks") == 2
        assert tracer.counter("never") == 0

    def test_null_tracer_is_inert(self):
        assert as_tracer(None) is NULL_TRACER
        tracer = as_tracer(None)
        with tracer.span("trial", workload=5) as span:
            span.annotate(ignored=True)
            tracer.annotate(ignored=True)
        assert tracer.export(span) == []
        assert tracer.count("anything") == 0
        assert not tracer.enabled
        real = Tracer()
        assert as_tracer(real) is real

    def test_span_record_attributes_json_is_canonical(self):
        tracer = Tracer()
        with tracer.span("s", b=2, a=1) as span:
            pass
        record = tracer.export(span)[0]
        assert record.attributes_json() == '{"a": 1, "b": 2}'


class TestTracedTrial:
    def test_all_eight_phases_present_and_nonzero(self):
        tracer = Tracer()
        runner = make_runner("emulab", "rubis", node_count=10,
                             tracer=tracer)
        experiment = small_experiment()
        result = runner.run_experiment(experiment)[0]
        assert result.spans, "traced trial carries no spans"
        root = result.spans[0]
        assert root.name == "trial"
        assert root.attributes["topology"] == "1-1-1"
        assert root.attributes["status"] == result.status
        phases = phase_durations(result.spans)
        for phase in TRIAL_PHASES:
            assert phases[phase] > 0.0, f"phase {phase} missing or empty"
        # Per-script spans nest under the script-driven phases.
        script_spans = [s for s in result.spans if s.name == "script"]
        assert any(s.attributes["path"].endswith("run.sh")
                   for s in script_spans)
        # The simulation's own span nests under the simulate phase.
        assert any(s.name == "sim.run" for s in result.spans)

    def test_untraced_trial_carries_no_spans(self):
        runner = make_runner("emulab", "rubis", node_count=10)
        result = runner.run_experiment(small_experiment())[0]
        assert result.spans == []

    def test_scheduler_counters_track_tasks(self):
        tracer = Tracer()
        runner = make_runner("emulab", "rubis", node_count=10,
                             tracer=tracer)
        experiment = small_experiment(workloads=(100, 200))
        runner.run_experiment(experiment, jobs=2, backend="thread")
        assert tracer.counter("scheduler.tasks_queued") == 2
        assert tracer.counter("scheduler.tasks_done") == 2
        assert tracer.counter("scheduler.tasks_running") == 0


class TestSpansInDatabase:
    def test_spans_round_trip(self):
        tracer = Tracer()
        database = ResultsDatabase()
        report = run_campaign(SMALL_TBL, database=database, node_count=10,
                              tracer=tracer)
        assert report.trials == 2
        assert database.span_count() > 0
        traced = database.traced_trials()
        assert len(traced) == 2
        info, spans = traced[0]
        assert info["experiment_name"] == "traced"
        assert spans[0].name == "trial"
        assert spans[0].parent_id == 0
        names = {span.name for span in spans}
        assert set(TRIAL_PHASES) <= names
        # Attributes deserialize back to real values.
        assert spans[0].attributes["workload"] == info["workload"]

    def test_replace_clears_stale_spans(self):
        tracer = Tracer()
        database = ResultsDatabase()
        run_campaign(SMALL_TBL, database=database, node_count=10,
                     tracer=tracer)
        first = database.span_count()
        run_campaign(SMALL_TBL, database=database, node_count=10,
                     tracer=tracer)
        assert database.count() == 2
        assert database.span_count() == first

    def test_untraced_run_stores_no_spans(self):
        database = ResultsDatabase()
        run_campaign(SMALL_TBL, database=database, node_count=10)
        assert database.span_count() == 0
        with pytest.raises(ResultsError, match="--trace"):
            trace_report(database)

    def test_dump_rows_rejects_unknown_table(self):
        with ResultsDatabase() as database:
            with pytest.raises(ResultsError):
                database.dump_rows("sqlite_master")


class TestTracingDeterminism:
    def test_traced_parallel_run_matches_untraced_sequential(self):
        """The acceptance criterion: jobs=4 with tracing on stores
        byte-identical observation tables to jobs=1 with tracing off
        (spans excluded)."""
        tbl = """
        benchmark rubis;
        platform emulab;
        experiment "f5-mini" {
            topology 1-2-1, 1-2-2, 1-3-1;
            workload 100, 200;
            write_ratio 15%;
            trial { warmup 3s; run 6s; cooldown 1s; }
        }
        """
        with ResultsDatabase() as plain, ResultsDatabase() as traced:
            run_campaign(tbl, database=plain, node_count=12, jobs=1)
            run_campaign(tbl, database=traced, node_count=12, jobs=4,
                         tracer=Tracer())
            assert plain.count() == traced.count() == 6
            assert plain.span_count() == 0
            assert traced.span_count() > 0
            for table in ("trials", "host_cpu", "state_metrics"):
                assert plain.dump_rows(table) == traced.dump_rows(table), \
                    f"table {table} diverged under tracing/jobs=4"


class TestTraceReport:
    def test_report_sections(self):
        tracer = Tracer()
        with ResultsDatabase() as database:
            run_campaign(SMALL_TBL, database=database, node_count=10,
                         tracer=tracer)
            rendered = trace_report(database)
        assert "Per-trial phase breakdown" in rendered
        assert "Slowest phases" in rendered
        assert "Worker utilization" in rendered
        for phase in TRIAL_PHASES:
            assert phase in rendered
        assert "traced 1-1-1 u=100" in rendered

    def test_report_filters_by_experiment(self):
        tracer = Tracer()
        with ResultsDatabase() as database:
            run_campaign(SMALL_TBL, database=database, node_count=10,
                         tracer=tracer)
            with pytest.raises(ResultsError):
                trace_report(database, experiment="nope")
            assert "traced" in trace_report(database, experiment="traced")

    def test_report_degrades_on_pre_planner_plane_databases(self):
        """A database written before the planner plane existed has no
        planner_decisions table; ``repro trace`` must render a note,
        not crash."""
        from repro.obs.report import render_planner_decisions

        with ResultsDatabase() as database:
            run_campaign(SMALL_TBL, database=database, node_count=10,
                         tracer=Tracer())
            # A fixed-grid run records no decisions: section omitted.
            assert render_planner_decisions(database) is None
            assert "Planner decisions" not in trace_report(database)
            # Simulate the pre-planner-plane file by dropping the table.
            with database._lock:
                database._db.execute("DROP TABLE planner_decisions")
                database._db.commit()
            assert not database.has_table("planner_decisions")
            note = render_planner_decisions(database)
            assert "no planner decisions recorded" in note
            assert "predates the planner plane" in note
            rendered = trace_report(database)
            assert "predates the planner plane" in rendered
            assert database.dump_rows("planner_decisions") == []


class TestApiFacade:
    def test_run_experiment_returns_results(self):
        results = run_experiment(SMALL_TBL, node_count=10)
        assert [r.workload for r in results] == [100, 200]
        assert all(r.experiment_name == "traced" for r in results)

    def test_run_experiment_requires_name_when_ambiguous(self):
        two = SMALL_TBL + """
        experiment "second" {
            topology 1-1-1;
            workload 100;
            write_ratio 15%;
            trial { warmup 3s; run 6s; cooldown 1s; }
        }
        """
        with pytest.raises(ExperimentError, match="second"):
            run_experiment(two, node_count=10)
        results = run_experiment(two, experiment="second", node_count=10)
        assert len(results) == 1

    def test_run_campaign_accepts_path_database(self, tmp_path):
        path = tmp_path / "obs.sqlite"
        report = run_campaign(SMALL_TBL, database=str(path), node_count=10)
        report.database.close()
        assert path.exists()
        with open_results(str(path), create=False) as database:
            assert database.count() == report.trials == 2

    def test_open_results_create_false_requires_file(self, tmp_path):
        with pytest.raises(ResultsError):
            open_results(str(tmp_path / "missing.sqlite"), create=False)

    def test_trace_report_accepts_path(self, tmp_path):
        path = tmp_path / "trace.sqlite"
        report = run_campaign(SMALL_TBL, database=str(path), node_count=10,
                              tracer=Tracer())
        report.database.close()
        assert "Per-trial phase breakdown" in trace_report(str(path))


class TestDeprecatedPositionalForms:
    def test_runner_positional_cluster_warns_but_works(self):
        cluster = VirtualCluster("emulab", node_count=10)
        tracer_free = make_runner("emulab", "rubis", node_count=10)
        model = tracer_free.resource_model
        with pytest.warns(DeprecationWarning, match="ExperimentRunner"):
            runner = ExperimentRunner(cluster, model)
        assert runner.cluster is cluster
        assert runner.resource_model is model

    def test_engine_positional_cluster_warns(self):
        cluster = VirtualCluster("emulab", node_count=10)
        with pytest.warns(DeprecationWarning, match="DeploymentEngine"):
            engine = DeploymentEngine(cluster)
        assert engine.cluster is cluster

    def test_scheduler_positional_jobs_warns(self):
        with pytest.warns(DeprecationWarning, match="TrialScheduler"):
            scheduler = TrialScheduler(lambda: None, 2, "thread")
        assert scheduler.jobs == 2
        assert scheduler.backend == "thread"

    def test_campaign_positional_mof_warns(self):
        with pytest.warns(DeprecationWarning, match="ObservationCampaign"):
            ObservationCampaign(SMALL_TBL, None, None, 6)

    def test_keyword_forms_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            cluster = VirtualCluster("emulab", node_count=10)
            DeploymentEngine(cluster=cluster)
            TrialScheduler(lambda: None, jobs=2, backend="thread")
            ObservationCampaign(SMALL_TBL, node_count=10)

    def test_too_many_positionals_is_a_type_error(self):
        cluster = VirtualCluster("emulab", node_count=10)
        with pytest.raises(TypeError):
            DeploymentEngine(cluster, "extra", "args")


class TestTracingNeverBreaksErrors:
    def test_error_inside_phase_still_releases_and_reports(self):
        tracer = Tracer()
        runner = make_runner("emulab", "rubis", node_count=10,
                             tracer=tracer)
        experiment = small_experiment()

        def exploding_deploy(*_args, **_kwargs):
            raise ReproError("deploy sabotaged")

        runner.engine.deploy = exploding_deploy
        before = runner.cluster.free_count()
        with pytest.raises(ReproError, match="sabotaged"):
            runner.run_experiment(experiment)
        # The cluster was released despite the failure.
        assert runner.cluster.free_count() == before
