"""Tests for Mulini: config files, bundles, shell and SmartFrog backends."""

import pytest

from repro.errors import GenerationError
from repro.generator import Bundle, HostPlan, Mulini, experiment_point_id
from repro.generator.backends import parse_smartfrog
from repro.generator import configfiles, workload
from repro.spec.mof import load_resource_model, render_resource_mof
from repro.spec.tbl import parse as parse_tbl
from repro.spec.topology import Topology


@pytest.fixture
def rubis_model():
    return load_resource_model(render_resource_mof("rubis", "emulab"))


@pytest.fixture
def rubis_spec():
    return parse_tbl("""
    benchmark rubis; platform emulab;
    experiment "baseline" {
        topology 1-1-1;
        workload 50 to 250 step 50;
        write_ratio 0% to 90% step 10%;
    }
    experiment "scaleout" {
        topology 1-2-2;
        workload 300;
        write_ratio 15%;
    }
    """)


@pytest.fixture
def mulini(rubis_model, rubis_spec):
    return Mulini(rubis_model, rubis_spec)


class TestConfigFiles:
    def test_workers2_roundtrip(self):
        workers = [{"name": "app1", "host": "node-3", "port": 8009},
                   {"name": "app2", "host": "node-4", "port": 8009}]
        text = configfiles.render_workers2(workers)
        parsed = configfiles.parse_workers2(text)
        assert parsed == workers

    def test_workers2_line_count_close_to_paper(self):
        # Table 5: 22 lines for the 2-app-server configuration.
        workers = [{"name": f"app{i}", "host": f"n{i}", "port": 8009}
                   for i in (1, 2)]
        text = configfiles.render_workers2(workers)
        assert 15 <= text.count("\n") + 1 <= 30

    def test_raidb_roundtrip(self):
        backends = [{"name": "db1", "host": "node-5", "port": 3306},
                    {"name": "db2", "host": "node-6", "port": 3306}]
        text = configfiles.render_raidb_config(backends, database="rubis")
        database, parsed = configfiles.parse_raidb_config(text)
        assert database == "rubis"
        assert parsed == backends

    def test_raidb_rejects_empty(self):
        with pytest.raises(Exception):
            configfiles.parse_raidb_config("<C-JDBC></C-JDBC>")

    def test_monitor_properties_six_keys_or_fewer(self):
        # Table 5: monitor-local.properties is a 6-line file.
        text = configfiles.render_monitor_properties(
            "node-3", 1.0, ("cpu", "memory"), "/var/log/appmon/node-3.dat"
        )
        values = configfiles.parse_properties(text)
        assert values["probe.host"] == "node-3"
        assert len(values) <= 6

    def test_tomcat_server_xml_roundtrip(self):
        text = configfiles.render_tomcat_server_xml(8009, 300)
        parsed = configfiles.parse_tomcat_server_xml(text)
        assert parsed == {"port": 8009, "max_threads": 300}

    def test_mysql_cnf(self):
        text = configfiles.render_mysql_cnf(3306, 500)
        values = configfiles.parse_simple_conf(text)
        assert values["port"] == "3306"
        assert values["max_connections"] == "500"

    def test_httpd_conf(self):
        text = configfiles.render_httpd_conf(80, 512, "/opt/apache/conf/w2.p")
        values = configfiles.parse_simple_conf(text)
        assert values["Listen"] == "80"
        assert values["MaxClients"] == "512"

    def test_properties_rejects_garbage(self):
        with pytest.raises(Exception):
            configfiles.parse_properties("no equals sign here")


class TestBundle:
    def test_accounting(self):
        bundle = Bundle("exp-1")
        bundle.add("run.sh", "a\nb\nc")
        bundle.add_script("X_install.sh", "1\n2")
        bundle.add_config("y.conf", "k=v")
        assert bundle.script_line_total() == 3 + 2
        assert bundle.config_line_total() == 1
        assert bundle.file_count() == 3

    def test_duplicate_rejected(self):
        bundle = Bundle("exp-1")
        bundle.add("run.sh", "x")
        with pytest.raises(GenerationError):
            bundle.add("run.sh", "y")

    def test_missing_file(self):
        with pytest.raises(GenerationError):
            Bundle("exp-1").content("nope")

    def test_manifest_lists_everything(self):
        bundle = Bundle("exp-1")
        bundle.add("run.sh", "x")
        bundle.add_script("a.sh", "y")
        manifest = bundle.manifest()
        assert "run.sh" in manifest
        assert "scripts/a.sh" in manifest

    def test_bad_experiment_id(self):
        with pytest.raises(GenerationError):
            Bundle("a/b")


class TestHostPlan:
    def test_synthetic_plan_names(self):
        plan = HostPlan.synthetic(Topology(1, 2, 1))
        assert plan.host_for("web", 1) == "node-1"
        assert plan.host_for("app", 2) == "node-3"
        assert plan.host_for("db", 1) == "node-4"

    def test_server_hosts_order(self):
        plan = HostPlan.synthetic(Topology(1, 1, 1))
        assert [t for t, _i, _h in plan.server_hosts()] == \
            ["web", "app", "db"]

    def test_out_of_range(self):
        plan = HostPlan.synthetic(Topology(1, 1, 1))
        with pytest.raises(GenerationError):
            plan.host_for("db", 2)


class TestShellBackend:
    def _bundle(self, mulini, rubis_spec, topo="1-2-2", workload_users=300):
        experiment = rubis_spec.experiment("scaleout")
        return mulini.generate(experiment, Topology.parse(topo),
                               workload_users, 0.15)

    def test_table4_script_family_present(self, mulini, rubis_spec):
        # Table 4's examples for the (1-2-2) configuration.
        bundle = self._bundle(mulini, rubis_spec)
        scripts = bundle.script_names()
        for expected in ("TOMCAT1_install.sh", "TOMCAT1_configure.sh",
                         "TOMCAT1_ignition.sh", "TOMCAT1_stop.sh",
                         "TOMCAT2_install.sh", "JONAS1_ignition.sh",
                         "MYSQL2_install.sh", "CJDBC1_configure.sh",
                         "APACHE1_install.sh", "SYS_MON_APP1_install.sh",
                         "SYS_MON_APP1_ignition.sh", "SYS_MON_DB2_install.sh",
                         "SYS_MON_CLIENT_install.sh", "CLIENT_install.sh",
                         "CLIENT_ignition.sh"):
            assert expected in scripts, expected

    def test_single_controller_for_replicated_db(self, mulini, rubis_spec):
        bundle = self._bundle(mulini, rubis_spec)
        scripts = bundle.script_names()
        assert "CJDBC1_install.sh" in scripts
        assert "CJDBC2_install.sh" not in scripts

    def test_table5_config_files_present(self, mulini, rubis_spec):
        bundle = self._bundle(mulini, rubis_spec)
        configs = bundle.config_names()
        assert "APACHE1_workers2.properties" in configs
        assert "CJDBC1_mysqldb-raidb1-elba.xml" in configs
        assert "JONAS1_monitor-local.properties" in configs

    def test_workers2_lists_all_app_servers(self, mulini, rubis_spec):
        bundle = self._bundle(mulini, rubis_spec)
        text = bundle.content("config/APACHE1_workers2.properties")
        workers = configfiles.parse_workers2(text)
        assert len(workers) == 2
        assert {w["host"] for w in workers} == {"node-2", "node-3"}

    def test_raidb_lists_all_backends(self, mulini, rubis_spec):
        bundle = self._bundle(mulini, rubis_spec)
        text = bundle.content("config/CJDBC1_mysqldb-raidb1-elba.xml")
        _db, backends = configfiles.parse_raidb_config(text)
        assert [b["host"] for b in backends] == ["node-4", "node-5"]

    def test_driver_properties_parse_back(self, mulini, rubis_spec):
        bundle = self._bundle(mulini, rubis_spec, workload_users=300)
        params = workload.parse_driver_properties(
            bundle.content("config/driver.properties")
        )
        assert params.users == 300
        assert params.write_ratio == pytest.approx(0.15)
        assert params.mix == "bidding"
        assert params.target_host == "node-1"   # web1
        assert params.target_port == 80

    def test_run_sh_orders_phases(self, mulini, rubis_spec):
        bundle = self._bundle(mulini, rubis_spec)
        run_sh = bundle.content("run.sh")
        install = run_sh.index("MYSQL1_install.sh")
        configure = run_sh.index("MYSQL1_configure.sh")
        ignite_db = run_sh.index("MYSQL1_ignition.sh")
        ignite_web = run_sh.index("APACHE1_ignition.sh")
        driver = run_sh.index("CLIENT_ignition.sh")
        assert install < configure < ignite_db < ignite_web < driver

    def test_scripts_reference_real_bundle_paths(self, mulini, rubis_spec):
        bundle = self._bundle(mulini, rubis_spec)
        configure = bundle.content("scripts/TOMCAT1_configure.sh")
        src = bundle.path_of("config/TOMCAT1_server.xml")
        assert src in configure

    def test_weblogic_variant(self, rubis_model):
        spec = parse_tbl("""
        benchmark rubis; platform emulab; app_server weblogic;
        experiment "wl" { topology 1-1-1; workload 100; }
        """)
        mulini = Mulini(rubis_model)
        bundle = mulini.generate(spec.experiment("wl"), Topology(1, 1, 1),
                                 100, 0.15)
        assert "WEBLOGIC1_ignition.sh" in bundle.script_names()
        assert "JONAS1_ignition.sh" not in bundle.script_names()

    def test_browsing_mix_for_zero_write_ratio(self, mulini, rubis_spec):
        experiment = rubis_spec.experiment("baseline")
        bundle = mulini.generate(experiment, Topology(1, 1, 1), 50, 0.0)
        params = workload.parse_driver_properties(
            bundle.content("config/driver.properties")
        )
        assert params.mix == "browsing"

    def test_rejects_bad_write_ratio(self, mulini, rubis_spec):
        with pytest.raises(GenerationError):
            mulini.generate(rubis_spec.experiment("baseline"),
                            Topology(1, 1, 1), 50, 1.5)

    def test_point_id_stable(self, rubis_spec):
        experiment = rubis_spec.experiment("baseline")
        point = experiment_point_id(experiment, Topology(1, 1, 1), 50, 0.1)
        assert point == "rubis-baseline-1-1-1-u50-w10"


class TestSweepGeneration:
    def test_sweep_covers_all_points(self, mulini, rubis_spec):
        experiment = rubis_spec.experiment("baseline")
        bundles = list(mulini.generate_sweep(experiment))
        assert len(bundles) == experiment.point_count() == 50

    def test_sweep_ids_unique(self, mulini, rubis_spec):
        experiment = rubis_spec.experiment("baseline")
        ids = [b.experiment_id for *_p, b in
               mulini.generate_sweep(experiment)]
        assert len(set(ids)) == len(ids)

    def test_scale_out_bundle_grows_with_topology(self, mulini, rubis_spec):
        experiment = rubis_spec.experiment("scaleout")
        small = mulini.generate(experiment, Topology(1, 1, 1), 300, 0.15)
        large = mulini.generate(experiment, Topology(1, 8, 2), 300, 0.15)
        assert large.script_line_total() > small.script_line_total()
        assert large.file_count() > small.file_count()


class TestSmartFrogBackend:
    def test_roundtrip(self, mulini, rubis_spec):
        experiment = rubis_spec.experiment("scaleout")
        text = mulini.generate(experiment, Topology(1, 2, 2), 300, 0.15,
                               backend="smartfrog")
        header, components = parse_smartfrog(text)
        assert header["topology"] == "1-2-2"
        servers = [c for c in components if c["kind"] == "DeployedServer"]
        monitors = [c for c in components if c["kind"] == "SystemMonitor"]
        # web apache + 2x(tomcat+jonas) + 2 mysql + 1 controller = 8
        assert len(servers) == 8
        # one monitor per distinct host: 5 servers + client = 6
        assert len(monitors) == 6

    def test_unknown_backend(self, mulini, rubis_spec):
        with pytest.raises(GenerationError):
            mulini.generate(rubis_spec.experiment("scaleout"),
                            Topology(1, 1, 1), 100, 0.15, backend="ant")

    def test_parse_rejects_garbage(self):
        with pytest.raises(GenerationError):
            parse_smartfrog("not smartfrog")
