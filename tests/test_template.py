"""Tests for the Mulini template engine."""

import pytest

from repro.errors import TemplateError
from repro.generator.template import lookup, render


class TestSubstitution:
    def test_simple(self):
        assert render("host={{ host }}", {"host": "node-1"}) == "host=node-1"

    def test_dotted_path_dict(self):
        assert render("{{ a.b }}", {"a": {"b": 3}}) == "3"

    def test_dotted_path_attribute(self):
        class Thing:
            port = 8009
        assert render("{{ t.port }}", {"t": Thing()}) == "8009"

    def test_multiple_on_one_line(self):
        out = render("{{ a }}:{{ b }}", {"a": 1, "b": 2})
        assert out == "1:2"

    def test_unknown_name_is_fatal(self):
        with pytest.raises(TemplateError):
            render("{{ missing }}", {})

    def test_unknown_nested_name_is_fatal(self):
        with pytest.raises(TemplateError):
            render("{{ a.missing }}", {"a": {"b": 1}})


class TestFor:
    def test_loop(self):
        template = "{% for h in hosts %}\nhost {{ h }}\n{% endfor %}"
        out = render(template, {"hosts": ["a", "b"]})
        assert out == "host a\nhost b"

    def test_empty_loop(self):
        template = "start\n{% for h in hosts %}\nx\n{% endfor %}\nend"
        assert render(template, {"hosts": []}) == "start\nend"

    def test_loop_over_dicts(self):
        template = "{% for w in workers %}\n{{ w.host }}:{{ w.port }}\n{% endfor %}"
        out = render(template, {"workers": [
            {"host": "n1", "port": 1}, {"host": "n2", "port": 2},
        ]})
        assert out == "n1:1\nn2:2"

    def test_nested_loops(self):
        template = (
            "{% for a in outer %}\n{% for b in inner %}\n{{ a }}{{ b }}\n"
            "{% endfor %}\n{% endfor %}"
        )
        out = render(template, {"outer": [1, 2], "inner": ["x", "y"]})
        assert out == "1x\n1y\n2x\n2y"

    def test_unterminated_for(self):
        with pytest.raises(TemplateError):
            render("{% for x in xs %}\nbody", {"xs": [1]})

    def test_malformed_for(self):
        with pytest.raises(TemplateError):
            render("{% for in xs %}\n{% endfor %}", {"xs": []})


class TestIf:
    def test_true_branch(self):
        template = "{% if flag %}\nyes\n{% else %}\nno\n{% endif %}"
        assert render(template, {"flag": True}) == "yes"

    def test_false_branch(self):
        template = "{% if flag %}\nyes\n{% else %}\nno\n{% endif %}"
        assert render(template, {"flag": False}) == "no"

    def test_if_without_else(self):
        template = "a\n{% if flag %}\nb\n{% endif %}\nc"
        assert render(template, {"flag": False}) == "a\nc"

    def test_truthiness_of_empty_list(self):
        template = "{% if items %}\nsome\n{% endif %}\ndone"
        assert render(template, {"items": []}) == "done"

    def test_unterminated_if(self):
        with pytest.raises(TemplateError):
            render("{% if flag %}\nbody", {"flag": True})

    def test_unknown_directive(self):
        with pytest.raises(TemplateError):
            render("{% while x %}", {"x": 1})


def test_lookup_helper():
    assert lookup({"a": {"b": [1, 2]}}, "a.b") == [1, 2]
    with pytest.raises(TemplateError):
        lookup({}, "nope")
