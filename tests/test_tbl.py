"""Tests for the Testbed Language front end."""

import pytest

from repro.errors import TblError
from repro.spec.tbl import (
    ExperimentDef,
    MonitorSpec,
    ServiceLevelObjective,
    TrialPhases,
    expand_range,
    parse,
    render_tbl,
    tokenize,
)
from repro.spec.topology import Topology

BASELINE_TBL = """
# RUBiS baseline, Figure 1 family.
benchmark rubis;
platform emulab;

experiment "figure1" {
    topology 1-1-1;
    workload 50 to 250 step 50;
    write_ratio 0% to 90% step 10%;
    think_time 7s;
    db_node_type emulab_low;
    trial { warmup 60s; run 300s; cooldown 60s; }
    slo { response_time 2000ms; error_ratio 10%; }
    monitor { interval 1s; metrics cpu, memory, disk, network; }
    timeout 20s;
    seed 7;
}
"""


class TestLexer:
    def test_topology_literal(self):
        tokens = tokenize("topology 1-8-2;")
        assert tokens[1].kind == "topo"
        assert tokens[1].value == "1-8-2"

    def test_duration_units(self):
        tokens = tokenize("300s 1500ms 2m 1h")
        assert [t.value for t in tokens] == [300.0, 1.5, 120.0, 3600.0]

    def test_percent_is_fraction(self):
        tokens = tokenize("15%")
        assert tokens[0].value == pytest.approx(0.15)

    def test_unknown_unit_rejected(self):
        with pytest.raises(TblError):
            tokenize("10furlongs")

    def test_plain_integer_stays_integer(self):
        tokens = tokenize("250")
        assert tokens[0].value == 250
        assert isinstance(tokens[0].value, int)

    def test_hash_and_slash_comments(self):
        assert tokenize("# one\n// two\nrun") [0].value == "run"

    def test_malformed_topology_rejected(self):
        with pytest.raises(TblError):
            tokenize("1-2-")


class TestParser:
    def test_parse_baseline_document(self):
        spec = parse(BASELINE_TBL)
        assert spec.benchmark == "rubis"
        assert spec.platform == "emulab"
        exp = spec.experiment("figure1")
        assert exp.topologies == (Topology(1, 1, 1),)
        assert exp.workloads == (50, 100, 150, 200, 250)
        assert len(exp.write_ratios) == 10
        assert exp.write_ratios[0] == pytest.approx(0.0)
        assert exp.write_ratios[-1] == pytest.approx(0.9)
        assert exp.trial == TrialPhases(60.0, 300.0, 60.0)
        assert exp.slo.response_time == pytest.approx(2.0)
        assert exp.slo.error_ratio == pytest.approx(0.10)
        assert exp.monitor.interval == 1.0
        assert exp.think_time == pytest.approx(7.0)
        assert exp.timeout == pytest.approx(20.0)
        assert exp.seed == 7
        assert exp.db_node_type == "emulab_low"

    def test_topology_list(self):
        spec = parse("""
        benchmark rubis; platform emulab;
        experiment "x" { topology 1-1-1, 1-2-1, 1-2-2; workload 100; }
        """)
        labels = [t.label() for t in spec.experiment("x").topologies]
        assert labels == ["1-1-1", "1-2-1", "1-2-2"]

    def test_topology_grid_expansion(self):
        spec = parse("""
        benchmark rubis; platform emulab;
        experiment "x" { topology 1-2-1 to 1-8-3; workload 100; }
        """)
        topologies = spec.experiment("x").topologies
        assert len(topologies) == 7 * 3
        assert topologies[0].label() == "1-2-1"
        assert topologies[-1].label() == "1-8-3"

    def test_topology_grid_must_dominate(self):
        with pytest.raises(TblError):
            parse("""
            benchmark rubis; platform emulab;
            experiment "x" { topology 1-8-1 to 1-2-3; workload 100; }
            """)

    def test_workload_comma_list(self):
        spec = parse("""
        benchmark rubbos; platform emulab;
        experiment "x" { topology 1-1-1; workload 300, 500, 700; }
        """)
        assert spec.experiment("x").workloads == (300, 500, 700)

    def test_default_trial_phases_per_benchmark(self):
        rubbos = parse("""
        benchmark rubbos; platform emulab;
        experiment "x" { topology 1-1-1; workload 500; }
        """)
        assert rubbos.experiment("x").trial == TrialPhases(150.0, 900.0, 150.0)

    def test_default_write_ratio_is_15_percent(self):
        spec = parse("""
        benchmark rubis; platform emulab;
        experiment "x" { topology 1-1-1; workload 100; }
        """)
        assert spec.experiment("x").write_ratios == (0.15,)

    def test_app_server_header_propagates(self):
        spec = parse("""
        benchmark rubis; platform warp; app_server weblogic;
        experiment "x" { topology 1-1-1; workload 100; }
        """)
        assert spec.experiment("x").app_server == "weblogic"

    def test_app_server_experiment_override(self):
        spec = parse("""
        benchmark rubis; platform warp; app_server jonas;
        experiment "x" {
            topology 1-1-1; workload 100; app_server weblogic;
        }
        """)
        assert spec.experiment("x").app_server == "weblogic"

    def test_missing_benchmark_rejected(self):
        with pytest.raises(TblError):
            parse('platform emulab; experiment "x" '
                  '{ topology 1-1-1; workload 1; }')

    def test_missing_topology_rejected(self):
        with pytest.raises(TblError):
            parse('benchmark rubis; platform emulab; '
                  'experiment "x" { workload 1; }')

    def test_missing_workload_rejected(self):
        with pytest.raises(TblError):
            parse('benchmark rubis; platform emulab; '
                  'experiment "x" { topology 1-1-1; }')

    def test_float_workload_rejected(self):
        with pytest.raises(TblError):
            parse('benchmark rubis; platform emulab; '
                  'experiment "x" { topology 1-1-1; workload 1.5; }')

    def test_unknown_setting_rejected(self):
        with pytest.raises(TblError):
            parse('benchmark rubis; platform emulab; '
                  'experiment "x" { topology 1-1-1; workload 1; frobnicate 2; }')

    def test_trial_requires_run(self):
        with pytest.raises(TblError):
            parse('benchmark rubis; platform emulab; experiment "x" '
                  '{ topology 1-1-1; workload 1; trial { warmup 1s; } }')

    def test_unknown_experiment_name(self):
        spec = parse(BASELINE_TBL)
        with pytest.raises(TblError):
            spec.experiment("nope")

    def test_points_enumeration(self):
        exp = parse(BASELINE_TBL).experiment("figure1")
        points = list(exp.points())
        assert len(points) == exp.point_count() == 5 * 10
        topo, workload, ratio = points[0]
        assert topo.label() == "1-1-1"


class TestAstValidation:
    def _make(self, **overrides):
        values = dict(
            name="x", benchmark="rubis", platform="emulab",
            topologies=(Topology(1, 1, 1),), workloads=(100,),
            write_ratios=(0.15,), trial=TrialPhases(1, 10, 1),
        )
        values.update(overrides)
        return ExperimentDef(**values)

    def test_bad_write_ratio(self):
        with pytest.raises(TblError):
            self._make(write_ratios=(1.5,))

    def test_bad_workload(self):
        with pytest.raises(TblError):
            self._make(workloads=(0,))

    def test_bad_think_time(self):
        with pytest.raises(TblError):
            self._make(think_time=0)

    def test_slo_bounds(self):
        with pytest.raises(TblError):
            ServiceLevelObjective(error_ratio=1.5)

    def test_monitor_unknown_metric(self):
        with pytest.raises(TblError):
            MonitorSpec(metrics=("cpu", "entropy"))

    def test_trial_scaled(self):
        scaled = TrialPhases(60, 300, 60).scaled(0.1)
        assert scaled.run == pytest.approx(30.0)
        assert scaled.total() == pytest.approx(42.0)

    def test_expand_range_int(self):
        assert expand_range(50, 250, 50) == (50, 100, 150, 200, 250)

    def test_expand_range_float_endpoint(self):
        values = expand_range(0.0, 0.9, 0.1)
        assert len(values) == 10
        assert values[-1] == pytest.approx(0.9)

    def test_expand_range_single(self):
        assert expand_range(42) == (42,)

    def test_expand_range_bad_step(self):
        with pytest.raises(TblError):
            expand_range(1, 10, 0)


class TestWriterRoundTrip:
    def test_render_parses_back(self):
        text = render_tbl(
            "rubis", "emulab",
            [dict(
                name="scaleout",
                topologies=(Topology(1, 2, 1), Topology(1, 3, 1)),
                workloads=(100, 200, 300),
                write_ratios=(0.15,),
                trial=TrialPhases(6, 30, 6),
                slo=ServiceLevelObjective(response_time=2.0,
                                          error_ratio=0.1),
                monitor=MonitorSpec(interval=1.0, metrics=("cpu", "disk")),
                think_time=7.0, timeout=20.0, seed=11,
            )],
        )
        spec = parse(text)
        exp = spec.experiment("scaleout")
        assert [t.label() for t in exp.topologies] == ["1-2-1", "1-3-1"]
        assert exp.workloads == (100, 200, 300)
        assert exp.write_ratios == (0.15,)
        assert exp.trial.run == pytest.approx(30.0)
        assert exp.monitor.metrics == ("cpu", "disk")
        assert exp.seed == 11

    def test_range_collapsing(self):
        text = render_tbl(
            "rubis", "emulab",
            [dict(name="r", topologies=(Topology(1, 1, 1),),
                  workloads=(50, 100, 150, 200, 250))],
        )
        assert "50 to 250 step 50" in text
        spec = parse(text)
        assert spec.experiment("r").workloads == (50, 100, 150, 200, 250)

    def test_write_ratio_rendered_as_percent(self):
        text = render_tbl(
            "rubis", "emulab",
            [dict(name="r", topologies=(Topology(1, 1, 1),),
                  workloads=(100,), write_ratios=(0.0, 0.45, 0.9))],
        )
        assert "write_ratio 0% to 90% step 45%;" in text
        spec = parse(text)
        assert spec.experiment("r").write_ratios[1] == pytest.approx(0.45)
