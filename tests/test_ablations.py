"""Tests for the ablation studies and balancer policies."""

import pytest

from repro.experiments import ablations
from repro.sim import NTierSimulation
from tests.conftest import make_driver, make_system


def rubis_system_factory(apps=12):
    def factory(dbs, users, write_ratio):
        driver = make_driver(users=users, write_ratio=write_ratio,
                             warmup=14.0, run=25.0, cooldown=4.0)
        return make_system(apps=apps, dbs=dbs, driver=driver)
    return factory


class TestRaidbAblation:
    def test_raidb_capacity_below_linear(self):
        rows = ablations.raidb_scaling(
            rubis_system_factory(), workload=2000,
            replica_counts=(1, 2),
        )
        two = rows[1]
        assert two["raidb_capacity"] < two["linear_capacity"]
        # Measured throughput at 2000 users: 1 DB saturates (~245/s),
        # 2 DBs carry the offered load (~285/s).
        assert rows[0]["throughput"] < 255
        assert rows[1]["throughput"] == pytest.approx(2000 / 7.0, rel=0.1)

    def test_third_replica_diminishing(self):
        rows = ablations.raidb_scaling(
            rubis_system_factory(), workload=1000,
            replica_counts=(1, 2, 3),
        )
        gain_2 = rows[1]["raidb_capacity"] - rows[0]["raidb_capacity"]
        gain_3 = rows[2]["raidb_capacity"] - rows[1]["raidb_capacity"]
        assert gain_3 < gain_2


class TestMvaAblation:
    def _factory(self):
        def factory(users):
            driver = make_driver(users=users, warmup=14.0, run=25.0,
                                 cooldown=4.0)
            return make_system(apps=1, dbs=1, driver=driver)
        return factory

    def test_mva_tracks_below_knee(self):
        rows = ablations.mva_vs_observation(self._factory(), [100])
        row = rows[0]
        assert row["observed_x"] == pytest.approx(row["mva_x"], rel=0.1)
        assert row["observed_rt_ms"] == pytest.approx(
            row["mva_rt_ms"], rel=0.5, abs=30)

    def test_mva_misses_error_behaviour_past_saturation(self):
        rows = ablations.mva_vs_observation(self._factory(), [700])
        row = rows[0]
        # MVA predicts unbounded queueing; the observed system sheds
        # load through timeouts, which no product-form model captures.
        assert row["observed_errors"] > 0.1
        assert row["mva_rt_ms"] > row["observed_rt_ms"]

    def test_render_rows(self):
        rows = ablations.mva_vs_observation(self._factory(), [100])
        text = ablations.render_rows(
            "MVA", rows, ["users", "observed_rt_ms", "mva_rt_ms"],
        )
        assert "users" in text and "100" in text


class TestBalancerAblation:
    def _factory(self, apps=4):
        def factory(users):
            driver = make_driver(users=users, warmup=14.0, run=20.0,
                                 cooldown=4.0)
            return make_system(apps=apps, dbs=1, driver=driver)
        return factory

    def test_policies_comparable_at_moderate_load(self):
        rows = ablations.balancer_policies(self._factory(), [600])
        row = rows[0]
        assert row["rr_x"] == pytest.approx(row["least_x"], rel=0.1)

    def test_round_robin_is_fair(self):
        driver = make_driver(users=600, warmup=10.0, run=20.0,
                             cooldown=4.0)
        system = make_system(apps=4, dbs=1, driver=driver)
        harness = NTierSimulation(system, balancer_policy="rr")
        harness.run()
        counts = ablations.per_station_balance(harness)
        values = list(counts.values())
        assert max(values) - min(values) < 0.05 * max(values)

    def test_least_connections_policy_runs(self):
        driver = make_driver(users=200, warmup=10.0, run=15.0,
                             cooldown=4.0)
        system = make_system(apps=3, dbs=1, driver=driver)
        harness = NTierSimulation(system, balancer_policy="least")
        records = harness.run()
        assert any(r.status == "ok" for r in records)

    def test_unknown_policy_rejected(self):
        driver = make_driver(users=10)
        system = make_system(driver=driver)
        with pytest.raises(Exception):
            NTierSimulation(system, balancer_policy="random")


class TestCatalogTables:
    def test_table1_lists_both_benchmarks(self):
        from repro.experiments.figures import table1
        fig = table1()
        assert "rubis" in fig.rendered and "rubbos" in fig.rendered
        assert "weblogic" not in fig.rendered   # default stacks only

    def test_table2_lists_three_platforms(self):
        from repro.experiments.figures import table2
        fig = table2()
        for platform in ("warp", "rohan", "emulab"):
            assert platform in fig.rendered
        assert "600" in fig.rendered or "0.6" in fig.rendered
