"""Edge-case coverage across modules: error paths and small helpers."""

import pytest

from repro.errors import (
    DeployError,
    GenerationError,
    ResultsError,
    TrialFailed,
    VerificationError,
)


class TestVerifyEdges:
    def _system_and_experiment(self):
        from repro.experiments import build_experiment
        from repro.spec.topology import Topology
        from tests.conftest import make_driver, make_system
        experiment, _tbl = build_experiment(
            name="edge", benchmark="rubis", platform="emulab",
            topologies=[Topology(1, 1, 1)], workloads=(100,),
            trial=None, scale=0.1,
        )
        driver = make_driver(users=100, warmup=14.0,
                             run=experiment.trial.run,
                             cooldown=experiment.trial.cooldown,
                             target_host="node-3")
        system = make_system(driver=driver)
        return system, experiment

    def test_driver_mix_mismatch(self):
        from repro.deploy import verify_deployment
        from repro.spec.topology import Topology
        system, experiment = self._system_and_experiment()
        # Verify against wr=0: the deployed driver says 'bidding'.
        with pytest.raises(VerificationError, match="mix|ratio"):
            verify_deployment(system, experiment, Topology(1, 1, 1),
                              100, 0.0)

    def test_run_period_mismatch(self):
        from dataclasses import replace
        from repro.deploy import verify_deployment
        from repro.spec.tbl import TrialPhases
        from repro.spec.topology import Topology
        system, experiment = self._system_and_experiment()
        wrong = replace(experiment, trial=TrialPhases(14.0, 999.0, 3.0))
        with pytest.raises(VerificationError, match="run period"):
            verify_deployment(system, wrong, Topology(1, 1, 1), 100, 0.15)

    def test_driver_target_not_a_web_host(self):
        from repro.deploy import verify_deployment
        from repro.spec.topology import Topology
        from tests.conftest import make_driver, make_system
        system, experiment = self._system_and_experiment()
        driver = make_driver(users=100, warmup=14.0,
                             run=experiment.trial.run,
                             cooldown=experiment.trial.cooldown,
                             target_host="nonexistent-host")
        bad = make_system(driver=driver)
        with pytest.raises(VerificationError, match="targets"):
            verify_deployment(bad, experiment, Topology(1, 1, 1),
                              100, 0.15)


class TestEngineEdges:
    def test_collect_missing_script(self):
        from repro.deploy import DeploymentEngine, Deployment
        from repro.generator import Bundle
        from repro.vcluster import VirtualCluster
        from repro.spec.topology import Topology
        cluster = VirtualCluster("emulab", node_count=8)
        allocation = cluster.allocate(Topology(1, 1, 1))
        bundle = Bundle("edge")
        bundle.add("run.sh", "echo hello")
        bundle.install_to(allocation.control)
        deployment = Deployment(bundle=bundle, allocation=allocation,
                                system=None, transcript="")
        engine = DeploymentEngine(cluster=cluster)
        with pytest.raises(DeployError, match="collect.sh"):
            engine.collect(deployment)


class TestReportEdges:
    def test_render_series(self):
        from repro.results.report import render_series
        text = render_series("T", [(1, 2.5), (2, 3.5)], y_label="ms")
        assert "T" in text and "2.5" in text and "ms" in text

    def test_render_surface_missing_cells(self):
        from repro.results.report import render_surface
        text = render_surface("S", {(100, 0.0): 40.0, (200, 0.5): 50.0})
        assert text.count("-") > 2      # the two absent corners


class TestCharacterizationEdges:
    def _map(self):
        from repro.core import PerformanceMap
        from tests.test_results import make_result
        return PerformanceMap([
            make_result(workload=100, mean_rt=0.05),
            make_result(workload=200, mean_rt=0.06),
        ])

    def test_point_lookup(self):
        result = self._map().point("1-1-1", 100, 0.15)
        assert result.workload == 100

    def test_point_missing(self):
        with pytest.raises(ResultsError):
            self._map().point("1-1-1", 999, 0.15)

    def test_inventory(self):
        pmap = self._map()
        assert pmap.workloads("1-1-1") == [100, 200]
        assert pmap.write_ratios("1-1-1") == [0.15]

    def test_knee_needs_two_workloads(self):
        from repro.core import PerformanceMap
        from tests.test_results import make_result
        pmap = PerformanceMap([make_result(workload=100)])
        with pytest.raises(ResultsError):
            pmap.knee("1-1-1")

    def test_no_knee_returns_none(self):
        assert self._map().knee("1-1-1") is None

    def test_empty_map_rejected(self):
        from repro.core import PerformanceMap
        with pytest.raises(ResultsError):
            PerformanceMap([])


class TestShellBuiltinEdges:
    @pytest.fixture
    def host_and_interp(self):
        from repro.shellvm import ShellInterpreter
        from repro.spec import get_platform
        from repro.vcluster import VirtualHost, VirtualNetwork
        network = VirtualNetwork()
        host = VirtualHost("h", get_platform("warp").node_type())
        network.attach(host)
        return host, ShellInterpreter(network)

    def test_cd_missing_directory(self, host_and_interp):
        host, interp = host_and_interp
        status, out = interp.run_text_on(host, "cd /nope")
        assert status == 1

    def test_cp_directory_needs_r(self, host_and_interp):
        host, interp = host_and_interp
        host.fs.mkdir("/src")
        status, out = interp.run_text_on(host, "cp /src /dst")
        assert status == 1
        assert "-r" in out

    def test_scp_directory_needs_r(self, host_and_interp):
        host, interp = host_and_interp
        host.fs.write("/tree/file", "x")
        status, out = interp.run_text_on(host, "scp /tree h:/copy")
        assert status == 1

    def test_chmod_missing_target(self, host_and_interp):
        host, interp = host_and_interp
        status, _out = interp.run_text_on(host, "chmod +x /nope")
        assert status == 1

    def test_tar_create_unsupported(self, host_and_interp):
        host, interp = host_and_interp
        host.fs.write("/f", "x")
        status, out = interp.run_text_on(host, "tar -czf /a.tar.gz -C /")
        assert status == 127
        assert "extraction" in out

    def test_export_without_value(self, host_and_interp):
        host, interp = host_and_interp
        status, _out = interp.run_text_on(host, "export PATH")
        assert status == 0

    def test_unknown_set_option(self, host_and_interp):
        host, interp = host_and_interp
        status, out = interp.run_text_on(host, "set -x")
        assert status == 127

    def test_process_describe(self, host_and_interp):
        host, _interp = host_and_interp
        process = host.spawn(["tool", "--flag"])
        assert "tool --flag" in process.describe()
        assert "running" in process.describe()


class TestGeneratorEdges:
    def test_mix_name_unknown_benchmark(self):
        from repro.generator.workload import mix_name
        with pytest.raises(GenerationError):
            mix_name("tpcw", 0.15)

    def test_driver_properties_reject_nonpositive_workload(self):
        from repro.experiments import build_experiment
        from repro.generator.workload import render_driver_properties
        from repro.spec.topology import Topology
        experiment, _tbl = build_experiment(
            name="x", benchmark="rubis", platform="emulab",
            topologies=[Topology(1, 1, 1)], workloads=(100,),
        )
        with pytest.raises(GenerationError):
            render_driver_properties(experiment, Topology(1, 1, 1), 0,
                                     0.15, "h", 80)

    def test_mulini_records_validation_warnings(self):
        from repro.generator import Mulini
        from repro.spec.mof import load_resource_model, render_resource_mof
        from repro.spec.tbl import parse
        spec = parse("""
        benchmark rubbos; platform emulab;
        experiment "w" { topology 0-1-1; workload 100; }
        """)
        model = load_resource_model(render_resource_mof("rubbos", "emulab"))
        mulini = Mulini(model, spec)
        assert any("web" in warning for warning in
                   mulini.validation_warnings)


class TestErrorTypes:
    def test_trial_failed_carries_partial(self):
        error = TrialFailed("overloaded", partial={"rt": 9.0})
        assert error.partial == {"rt": 9.0}

    def test_spec_error_location_formatting(self):
        from repro.errors import SpecError
        error = SpecError("bad", line=3, column=7, source="x.tbl")
        assert "x.tbl:3:7" in str(error)

    def test_shell_error_location_formatting(self):
        from repro.errors import ShellError
        error = ShellError("bad", line=9, script="run.sh")
        assert "run.sh:9" in str(error)


class TestCollectorEdges:
    def test_peak_and_byte_size(self):
        from repro.monitoring import parse_sysstat
        series = parse_sysstat(
            "#sysstat 6.0.2 host=n1 interval=1 metrics=cpu\n"
            "1 cpu 10\n2 cpu 90\n3 cpu 50\n"
        )
        assert series.peak("cpu") == 90.0
        assert series.mean("cpu", window=(2, 3)) == pytest.approx(70.0)
        assert series.byte_size() > 0

    def test_unknown_metric(self):
        from repro.errors import MonitoringError
        from repro.monitoring import parse_sysstat
        series = parse_sysstat(
            "#sysstat 6.0.2 host=n1 interval=1 metrics=cpu\n1 cpu 10\n"
        )
        with pytest.raises(MonitoringError):
            series.series("entropy")


class TestHeuristicsEdges:
    def test_outcome_requires_trials(self):
        from repro.core.heuristics import ScaleOutOutcome
        from repro.errors import ExperimentError
        with pytest.raises(ExperimentError):
            ScaleOutOutcome().final_topology()
