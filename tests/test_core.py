"""Tests for the core characterization/capacity/strategy/campaign API."""

import pytest

from repro.core import (
    CapacityPlanner,
    ObservationCampaign,
    PerformanceMap,
    ScaleOutStrategy,
    detect_bottleneck,
    diagnose,
    slo_violated,
)
from repro.core.bottleneck import bottleneck_progression
from repro.errors import ResultsError
from repro.experiments.figures import make_runner
from repro.results import ResultsDatabase
from repro.spec.tbl import ServiceLevelObjective
from tests.test_results import make_result


class TestBottleneck:
    def test_detects_saturated_app_tier(self):
        result = make_result(app_cpu=95.0, db_cpu=30.0)
        assert detect_bottleneck(result) == "app"

    def test_detects_most_utilized_when_several_saturated(self):
        result = make_result(app_cpu=88.0, db_cpu=97.0)
        assert detect_bottleneck(result) == "db"

    def test_no_bottleneck_below_threshold(self):
        result = make_result(app_cpu=60.0, db_cpu=30.0)
        assert detect_bottleneck(result) is None

    def test_slo_violated_on_rt(self):
        slo = ServiceLevelObjective(response_time=0.1, error_ratio=0.1)
        assert slo_violated(make_result(mean_rt=0.5), slo)
        assert not slo_violated(make_result(mean_rt=0.05), slo)

    def test_diagnose_structure(self):
        slo = ServiceLevelObjective(response_time=0.1)
        verdict = diagnose(make_result(mean_rt=0.5, app_cpu=95.0), slo)
        assert verdict["slo_violated"]
        assert verdict["bottleneck"] == "app"
        assert verdict["utilizations"]["app"] == 95.0

    def test_progression_finds_first_violation(self):
        slo = ServiceLevelObjective(response_time=0.1)
        results = [
            make_result(workload=100, mean_rt=0.05, app_cpu=40),
            make_result(workload=200, mean_rt=0.08, app_cpu=70),
            make_result(workload=300, mean_rt=0.9, app_cpu=99),
        ]
        verdict = bottleneck_progression(results, slo)
        assert verdict["workload"] == 300
        assert verdict["bottleneck"] == "app"

    def test_progression_none_when_all_good(self):
        slo = ServiceLevelObjective(response_time=10.0)
        results = [make_result(workload=100, mean_rt=0.05)]
        assert bottleneck_progression(results, slo) is None

    def test_dnf_violates_slo(self):
        # A DNF row carries empty metrics (mean RT 0.0), which a naive
        # threshold check reads as a pass; a trial that could not
        # complete the benchmark violates by definition.
        from repro.experiments.trial import DNF, empty_metrics

        slo = ServiceLevelObjective(response_time=0.1, error_ratio=0.1)
        dnf = make_result(status=DNF, mean_rt=0.0)
        assert dnf.metrics.mean_response_s <= slo.response_time
        assert slo_violated(dnf, slo)
        assert empty_metrics().mean_response_s == 0.0

    def test_diagnose_reports_dnf_status(self):
        from repro.experiments.trial import DNF

        slo = ServiceLevelObjective(response_time=0.1)
        verdict = diagnose(make_result(status=DNF, mean_rt=0.0,
                                       app_cpu=99.0), slo)
        assert verdict["status"] == DNF
        assert verdict["slo_violated"]
        assert verdict["bottleneck"] == "app"

    def test_diagnose_handles_failed_result_without_hosts(self):
        # failed_result rows have no host_cpu/tier_of_host at all —
        # diagnose must not require monitor data to render a verdict.
        from repro.experiments.trial import AttemptFailure, failed_result
        from repro.spec.tbl import parse as parse_tbl
        from repro.spec.topology import Topology

        spec = parse_tbl(
            'benchmark rubis; platform emulab; experiment "e" { '
            "topology 1-1-1; workload 100; write_ratio 15%; "
            "trial { warmup 1s; run 5s; cooldown 1s; } }")
        dnf = failed_result(
            spec.experiments[0], Topology.parse("1-1-1"), 100, 0.15, 42,
            failures=[AttemptFailure(attempt=1, phase="deploy",
                                     cause="host crashed",
                                     error_type="DeploymentError",
                                     transient=True, resolution="gave-up")],
            attempts=1)
        slo = ServiceLevelObjective(response_time=0.1)
        verdict = diagnose(dnf, slo)
        assert verdict["slo_violated"]
        assert verdict["bottleneck"] is None
        assert verdict["utilizations"] == {}

    def test_progression_with_dnf_mixed_in(self):
        # The knee lands on the DNF even though its raw metrics would
        # read as the healthiest trial of the series.
        from repro.experiments.trial import DNF

        slo = ServiceLevelObjective(response_time=1.0, error_ratio=0.1)
        results = [
            make_result(workload=300, mean_rt=0.0, status=DNF,
                        app_cpu=0.0, db_cpu=0.0),
            make_result(workload=100, mean_rt=0.05, app_cpu=40),
            make_result(workload=200, mean_rt=0.08, app_cpu=70),
        ]
        verdict = bottleneck_progression(results, slo)
        assert verdict["workload"] == 300
        assert verdict["status"] == DNF

    def test_progression_dnf_before_clean_violation(self):
        from repro.experiments.trial import DNF

        slo = ServiceLevelObjective(response_time=0.5)
        results = [
            make_result(workload=100, mean_rt=0.05),
            make_result(workload=200, mean_rt=0.0, status=DNF),
            make_result(workload=300, mean_rt=2.0, app_cpu=99),
        ]
        verdict = bottleneck_progression(results, slo)
        assert verdict["workload"] == 200    # first violation, the DNF


class TestPerformanceMap:
    def _map(self):
        results = []
        for topology, capacity in (("1-1-1", 245), ("1-2-1", 490)):
            for workload in (100, 200, 300, 400, 500):
                rt = 0.04 if workload <= capacity \
                    else workload / (capacity / 7.0) - 7.0
                results.append(make_result(topology, workload, mean_rt=rt))
        return PerformanceMap(results)

    def test_exact_point(self):
        pmap = self._map()
        assert pmap.response_time("1-1-1", 100) == pytest.approx(0.04)

    def test_interpolation_between_points(self):
        pmap = self._map()
        rt_250 = pmap.response_time("1-1-1", 250)
        rt_200 = pmap.response_time("1-1-1", 200)
        rt_300 = pmap.response_time("1-1-1", 300)
        assert rt_200 < rt_250 < rt_300
        assert rt_250 == pytest.approx((rt_200 + rt_300) / 2)

    def test_clamps_outside_observed_range(self):
        pmap = self._map()
        assert pmap.response_time("1-1-1", 10) == \
            pmap.response_time("1-1-1", 100)
        assert pmap.response_time("1-1-1", 9999) == \
            pmap.response_time("1-1-1", 500)

    def test_supported_users(self):
        # RT(1-1-1): 0.04 up to 200, 1.57 @300, 4.43 @400, 7.3 @500.
        pmap = self._map()
        slo = ServiceLevelObjective(response_time=1.0)
        assert pmap.supported_users("1-1-1", slo) == 200
        assert pmap.supported_users("1-2-1", slo) == 500

    def test_knee_detection(self):
        pmap = self._map()
        assert pmap.knee("1-1-1") == 300
        assert pmap.knee("1-2-1") == 500

    def test_unknown_topology(self):
        with pytest.raises(ResultsError):
            self._map().response_time("9-9-9", 100)

    def test_from_database(self):
        with ResultsDatabase() as db:
            db.insert(make_result())
            pmap = PerformanceMap.from_database(db)
            assert pmap.topologies() == ["1-1-1"]


class TestCapacityPlanner:
    def _planner(self):
        results = []
        for topology, capacity in (("1-1-1", 245), ("1-2-1", 490),
                                   ("1-3-1", 735), ("1-2-2", 510)):
            for workload in (100, 300, 500, 700):
                rt = 0.04 if workload <= capacity \
                    else workload / (capacity / 7.0) - 7.0
                results.append(make_result(topology, workload, mean_rt=rt))
        return CapacityPlanner(PerformanceMap(results))

    def test_minimal_plan_for_light_load(self):
        plan = self._planner().plan(
            100, ServiceLevelObjective(response_time=1.0))
        assert plan.topology == "1-1-1"
        assert plan.total_servers == 3

    def test_minimal_plan_for_500_users(self):
        # Against a tight 100 ms SLO, 1-2-1 is just past its knee at 500
        # users (RT 143 ms); 1-3-1 is the smallest compliant topology.
        plan = self._planner().plan(
            500, ServiceLevelObjective(response_time=0.1))
        # 1-2-1 (4 servers) is past its knee; 1-3-1 and 1-2-2 tie at
        # five servers and both comply.
        assert plan.topology in ("1-3-1", "1-2-2")
        assert plan.total_servers == 5

    def test_prefers_fewer_servers_over_faster(self):
        # 1-2-2 also carries 500 users but needs 5 servers vs 1-3-1's 5:
        # tie broken by expected response time; both beat over-provision.
        plan = self._planner().plan(
            300, ServiceLevelObjective(response_time=1.0))
        assert plan.topology == "1-2-1"

    def test_unsatisfiable_returns_infeasible_plan(self):
        plan = self._planner().plan(
            5000, ServiceLevelObjective(response_time=0.5))
        assert not plan.feasible
        assert plan.users == 5000
        assert "5000" in plan.reason
        # The nearest measured configuration is named, so the operator
        # knows where the observations ran out: 1-3-1 carries the most
        # users (700) of anything measured.
        assert plan.nearest_topology == "1-3-1"
        assert plan.nearest_supported_users == 700
        assert "1-3-1" in plan.describe()

    def test_plan_range_marks_unsatisfiable(self):
        plans = self._planner().plan_range(
            [100, 5000], ServiceLevelObjective(response_time=1.0))
        assert plans[100].feasible
        assert not plans[5000].feasible
        assert plans[5000].nearest_topology == "1-3-1"

    def test_over_provisioning_raises_when_infeasible(self):
        with pytest.raises(ResultsError, match="infeasible"):
            self._planner().over_provisioning(
                5000, ServiceLevelObjective(response_time=0.5), "1-3-1")

    def test_over_provisioning(self):
        planner = self._planner()
        waste = planner.over_provisioning(
            100, ServiceLevelObjective(response_time=1.0), "1-3-1")
        assert waste == 2

    def test_describe(self):
        plan = self._planner().plan(
            100, ServiceLevelObjective(response_time=1.0))
        assert "1-1-1" in plan.describe()


class TestScaleOutStrategy:
    def test_strategy_grows_app_tier_first(self):
        runner = make_runner("emulab", "rubis", node_count=16)
        strategy = ScaleOutStrategy(runner, "rubis", "emulab", scale=0.05)
        slo = ServiceLevelObjective(response_time=1.0, error_ratio=0.1)
        outcome = strategy.explore(
            slo, workload_start=200, workload_step=200, max_workload=800,
            max_app=4, max_trials=12,
        )
        actions = [step.action for step in outcome.steps]
        assert "scale app" in actions
        assert "scale db" not in actions      # app is the RUBiS bottleneck
        # The exploration must have measurably raised capacity.
        assert outcome.max_supported_workload(slo) >= 400

    def test_strategy_records_reasons(self):
        runner = make_runner("emulab", "rubis", node_count=12)
        strategy = ScaleOutStrategy(runner, "rubis", "emulab", scale=0.05)
        slo = ServiceLevelObjective(response_time=1.0, error_ratio=0.1)
        outcome = strategy.explore(
            slo, workload_start=300, workload_step=300, max_workload=600,
            max_app=2, max_trials=6,
        )
        assert all(step.reason for step in outcome.steps)
        assert outcome.final_topology() is not None


class TestObservationCampaign:
    TBL = """
    benchmark rubis; platform emulab;
    experiment "mini" {
        topology 1-1-1, 1-2-1;
        workload 100, 300;
        write_ratio 15%;
        trial { warmup 3s; run 15s; cooldown 3s; }
    }
    """

    def test_campaign_end_to_end(self):
        campaign = ObservationCampaign(self.TBL, node_count=10)
        report = campaign.run()
        assert report.trials == 4
        assert report.completed >= 3
        assert campaign.database.count() == 4
        pmap = campaign.performance_map()
        assert set(pmap.topologies()) == {"1-1-1", "1-2-1"}
        # 1-2-1 handles 300 users gracefully, 1-1-1 does not.
        assert pmap.response_time("1-2-1", 300) < \
            pmap.response_time("1-1-1", 300) / 3

    def test_campaign_subset_selection(self):
        campaign = ObservationCampaign(self.TBL, node_count=10)
        report = campaign.run(experiment_names=["mini"])
        assert report.experiments == ["mini"]

    def test_campaign_progress_callback(self):
        campaign = ObservationCampaign(self.TBL, node_count=10)
        seen = []
        campaign.run(on_result=lambda r: seen.append(r.workload))
        assert sorted(seen) == [100, 100, 300, 300]

    def test_campaign_validates_spec(self):
        bad = """
        benchmark rubis; platform emulab;
        experiment "huge" { topology 1-40-3; workload 100; }
        """
        with pytest.raises(Exception):
            ObservationCampaign(bad, node_count=10)
