"""Fuzz tests: the parsers must reject garbage with typed errors.

Front ends (MOF, TBL, the shell dialect, monitor/driver file formats)
face generated *and* hand-edited inputs; whatever arrives, they must
either parse it or raise the module's typed error — never an
AttributeError/IndexError escape.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    MofError,
    MonitoringError,
    ReproError,
    ShellError,
    TblError,
)
from repro.monitoring import parse_request_log, parse_sysstat
from repro.shellvm import parse as parse_shell
from repro.spec.mof import parse as parse_mof
from repro.spec.tbl import parse as parse_tbl

# Character soup biased toward each grammar's own alphabet, so the
# fuzzer spends its budget near the parsers' edge cases.
_MOF_ALPHABET = 'clasinterofbd {}[]();=,"0123456789.\n\t _-'
_TBL_ALPHABET = 'benchmarkxptopologywd {};,%"0123456789.-\ns'
_SHELL_ALPHABET = "abcdefish $\"'{}&|;><=/-\n\t0123456789#"


@settings(max_examples=300, deadline=None)
@given(st.text(alphabet=_MOF_ALPHABET, max_size=120))
def test_mof_parser_total(text):
    try:
        parse_mof(text)
    except MofError:
        pass


@settings(max_examples=300, deadline=None)
@given(st.text(alphabet=_TBL_ALPHABET, max_size=120))
def test_tbl_parser_total(text):
    try:
        parse_tbl(text)
    except TblError:
        pass


@settings(max_examples=300, deadline=None)
@given(st.text(alphabet=_SHELL_ALPHABET, max_size=120))
def test_shell_parser_total(text):
    try:
        parse_shell(text)
    except ShellError:
        pass


@settings(max_examples=150, deadline=None)
@given(st.text(max_size=100))
def test_mof_parser_total_unicode(text):
    try:
        parse_mof(text)
    except MofError:
        pass


@settings(max_examples=150, deadline=None)
@given(st.text(max_size=100))
def test_tbl_parser_total_unicode(text):
    try:
        parse_tbl(text)
    except TblError:
        pass


@settings(max_examples=150, deadline=None)
@given(st.text(max_size=100))
def test_shell_parser_total_unicode(text):
    try:
        parse_shell(text)
    except ShellError:
        pass


@settings(max_examples=200, deadline=None)
@given(st.text(max_size=200))
def test_sysstat_parser_total(text):
    try:
        parse_sysstat(text)
    except (MonitoringError, ValueError):
        # float() on header tokens may raise ValueError via our own
        # guarded paths; anything else would be a real bug.
        pass


@settings(max_examples=200, deadline=None)
@given(st.text(max_size=200))
def test_request_log_parser_total(text):
    try:
        parse_request_log(text)
    except (MonitoringError, ValueError):
        pass


@settings(max_examples=100, deadline=None)
@given(
    web=st.integers(min_value=0, max_value=2),
    app=st.integers(min_value=1, max_value=12),
    db=st.integers(min_value=1, max_value=3),
    workloads=st.lists(st.integers(min_value=1, max_value=5000),
                       min_size=1, max_size=5, unique=True),
    ratios=st.lists(
        st.sampled_from([0.0, 0.05, 0.1, 0.15, 0.3, 0.5, 0.75, 0.9]),
        min_size=1, max_size=4, unique=True),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_tbl_writer_parser_roundtrip(web, app, db, workloads, ratios,
                                     seed):
    """Any sweep the writer can render, the parser must accept, with
    identical semantics."""
    from repro.spec.tbl import render_tbl, parse
    from repro.spec.topology import Topology

    topology = Topology(web, app, db)
    text = render_tbl("rubis", "emulab", [dict(
        name="fuzz", topologies=(topology,),
        workloads=tuple(sorted(workloads)),
        write_ratios=tuple(sorted(ratios)),
        seed=seed,
    )])
    spec = parse(text)
    experiment = spec.experiment("fuzz")
    assert experiment.topologies == (topology,)
    assert experiment.workloads == tuple(sorted(workloads))
    assert experiment.seed == seed
    for expected, parsed in zip(sorted(ratios), experiment.write_ratios):
        assert parsed == pytest.approx(expected, abs=1e-9)


@settings(max_examples=60, deadline=None)
@given(
    hosts=st.lists(
        st.text(alphabet="abcdef123-", min_size=1, max_size=10),
        min_size=1, max_size=6, unique=True),
    port=st.integers(min_value=1, max_value=65535),
)
def test_workers2_roundtrip_property(hosts, port):
    from repro.generator.configfiles import parse_workers2, render_workers2
    workers = [{"name": f"app{i}", "host": host, "port": port}
               for i, host in enumerate(hosts, 1)]
    assert parse_workers2(render_workers2(workers)) == workers


@settings(max_examples=60, deadline=None)
@given(
    hosts=st.lists(
        st.text(alphabet="abcdef123-", min_size=1, max_size=10),
        min_size=1, max_size=4, unique=True),
)
def test_raidb_roundtrip_property(hosts):
    from repro.generator.configfiles import (
        parse_raidb_config,
        render_raidb_config,
    )
    backends = [{"name": f"db{i}", "host": host, "port": 3306}
                for i, host in enumerate(hosts, 1)]
    database, parsed = parse_raidb_config(render_raidb_config(backends))
    assert parsed == backends


def test_everything_raises_repro_errors():
    """The typed errors all descend from ReproError (one catch point)."""
    for error_class in (MofError, TblError, ShellError, MonitoringError):
        assert issubclass(error_class, ReproError)
