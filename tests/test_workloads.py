"""Tests for the RUBiS/RUBBoS workload models and calibration."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workloads import (
    Interaction,
    RUBBOS,
    RUBIS,
    TransitionMatrix,
    build_model,
    get_calibration,
    mix_for_write_ratio,
    normalized_demands,
    rubbos,
    rubis,
)
from repro.workloads.calibration import RUBBOS_DB_READ_LIGHT_S


class TestTransitionMatrix:
    def test_rows_must_sum_to_one(self):
        with pytest.raises(WorkloadError):
            TransitionMatrix(("a", "b"), [(0.5, 0.6), (0.5, 0.5)])

    def test_negative_probability_rejected(self):
        with pytest.raises(WorkloadError):
            TransitionMatrix(("a", "b"), [(-0.1, 1.1), (0.5, 0.5)])

    def test_next_state_deterministic_draws(self):
        matrix = TransitionMatrix(("a", "b"), [(0.3, 0.7), (1.0, 0.0)])
        assert matrix.next_state("a", 0.1) == "a"
        assert matrix.next_state("a", 0.5) == "b"
        assert matrix.next_state("b", 0.99) == "a"

    def test_stationary_of_structured_chain(self):
        # Classic 2-state chain with known stationary (2/3, 1/3).
        matrix = TransitionMatrix(("a", "b"), [(0.75, 0.25), (0.5, 0.5)])
        pi = matrix.stationary()
        assert pi["a"] == pytest.approx(2 / 3, abs=1e-6)
        assert pi["b"] == pytest.approx(1 / 3, abs=1e-6)

    def test_memoryless_stationary_is_mix(self):
        matrix = TransitionMatrix.memoryless(("a", "b", "c"),
                                             (0.5, 0.3, 0.2))
        pi = matrix.stationary()
        assert pi["a"] == pytest.approx(0.5)
        assert pi["c"] == pytest.approx(0.2)

    def test_unknown_state(self):
        matrix = TransitionMatrix.memoryless(("a",), (1.0,))
        with pytest.raises(WorkloadError):
            matrix.next_state("zzz", 0.5)


class TestRubisModel:
    def test_has_26_interactions(self):
        assert len(rubis.INTERACTIONS) == 26
        assert len(set(i.name for i in rubis.INTERACTIONS)) == 26

    def test_five_write_interactions(self):
        writes = [i for i in rubis.INTERACTIONS if i.is_write]
        assert len(writes) == 5

    def test_write_fraction_exact(self):
        for ratio in (0.0, 0.15, 0.5, 0.9):
            model = rubis.build_model(ratio)
            assert model.matrix.write_fraction(rubis.INTERACTIONS) == \
                pytest.approx(ratio, abs=1e-9)

    def test_mean_app_demand_matches_calibration(self):
        for ratio in (0.0, 0.15, 0.3, 0.9):
            model = rubis.build_model(ratio)
            _web, app, _db = model.mean_demands()
            assert app == pytest.approx(RUBIS.app_mean(ratio), rel=1e-6)

    def test_mean_db_demand_matches_calibration(self):
        for ratio in (0.0, 0.15, 0.9):
            model = rubis.build_model(ratio)
            _web, _app, db = model.mean_demands()
            assert db == pytest.approx(RUBIS.db_mean(ratio), rel=1e-6)

    def test_app_demand_falls_with_write_ratio(self):
        # The paper's inversion: high write ratio -> light app tier.
        lo = rubis.build_model(0.0).mean_demands()[1]
        hi = rubis.build_model(0.9).mean_demands()[1]
        assert hi < lo / 3

    def test_read_interactions_heavier_on_app(self):
        model = rubis.build_model(0.15)
        view_item = model.demand("ViewItem")
        store_bid = model.demand("StoreBid")
        assert view_item.app_s > store_bid.app_s

    def test_write_flag_propagates(self):
        model = rubis.build_model(0.15)
        assert model.demand("StoreBid").is_write
        assert not model.demand("Browse").is_write

    def test_browsing_mix_requires_zero_ratio(self):
        with pytest.raises(WorkloadError):
            rubis.build_model(0.15, mix="browsing")

    def test_matrices_exported(self):
        browsing = rubis.browsing_matrix()
        bidding = rubis.bidding_matrix()
        assert browsing.write_fraction(rubis.INTERACTIONS) == 0.0
        assert bidding.write_fraction(rubis.INTERACTIONS) == \
            pytest.approx(0.15)

    def test_ratio_out_of_range(self):
        with pytest.raises(WorkloadError):
            rubis.build_model(0.99)


class TestRubbosModel:
    def test_has_24_interactions(self):
        assert len(rubbos.INTERACTIONS) == 24
        assert len(set(i.name for i in rubbos.INTERACTIONS)) == 24

    def test_readonly_db_heavier_than_submission(self):
        # Figure 4's inversion: read-only saturates earlier.
        readonly = rubbos.build_model(0.0, mix="readonly")
        submission = rubbos.build_model(0.15, mix="submission")
        db_readonly = readonly.mean_demands()[2]
        db_submission = submission.mean_demands()[2]
        assert db_readonly == pytest.approx(RUBBOS.db_read_s, rel=1e-6)
        assert db_submission < db_readonly

    def test_submission_mean_db_demand(self):
        model = rubbos.build_model(0.15, mix="submission")
        expected = (0.85 * RUBBOS_DB_READ_LIGHT_S
                    + 0.15 * RUBBOS.db_write_s)
        assert model.mean_demands()[2] == pytest.approx(expected, rel=1e-6)

    def test_mix_inferred_from_ratio(self):
        assert build_model("rubbos", 0.0).mix == "readonly"
        assert build_model("rubbos", 0.15).mix == "submission"

    def test_readonly_rejects_writes(self):
        with pytest.raises(WorkloadError):
            rubbos.build_model(0.15, mix="readonly")

    def test_unknown_mix(self):
        with pytest.raises(WorkloadError):
            rubbos.build_model(0.15, mix="chaos")

    def test_viewstory_is_db_heavy(self):
        model = rubbos.build_model(0.0, mix="readonly")
        assert model.demand("ViewStory").db_s > model.demand("Home").db_s

    def test_no_web_demand(self):
        model = rubbos.build_model(0.15)
        assert model.demand("ViewStory").web_s == 0.0


class TestCalibration:
    def test_rubis_app_knee_at_bidding_ratio(self):
        demand = RUBIS.app_mean(0.15)
        knee = RUBIS.saturation_users(demand)
        assert 240 <= knee <= 250     # ~250 users per JOnAS server (V.B)

    def test_rubis_db_knee_single_backend(self):
        demand = RUBIS.db_backend_mean(0.15, replicas=1)
        knee = RUBIS.saturation_users(demand)
        assert 1650 <= knee <= 1750   # ~1700 users on one DB (V.B)

    def test_rubis_db_knee_two_backends(self):
        demand = RUBIS.db_backend_mean(0.15, replicas=2)
        knee = 2 * RUBIS.saturation_users(demand) / 2
        # Each of the two backends saturates near 2860 total users: the
        # RAIDb-1 write-all rule caps scaling well below 2x1700.
        total = RUBIS.saturation_users(demand)
        assert 2700 <= total <= 3000

    def test_raidb_scaling_sublinear(self):
        one = RUBIS.db_backend_mean(0.15, 1)
        two = RUBIS.db_backend_mean(0.15, 2)
        three = RUBIS.db_backend_mean(0.15, 3)
        assert one / two < 2.0        # speedup below linear
        assert two > three            # but still improving

    def test_rubbos_knees_inside_figure4_range(self):
        readonly_knee = RUBBOS.saturation_users(RUBBOS.db_read_s)
        mix_demand = 0.85 * RUBBOS_DB_READ_LIGHT_S + 0.15 * RUBBOS.db_write_s
        mix_knee = RUBBOS.saturation_users(mix_demand)
        assert 1800 <= readonly_knee <= 2200
        assert 2900 <= mix_knee <= 3500
        assert readonly_knee < mix_knee

    def test_web_tier_never_bottleneck_below_2700(self):
        knee = RUBIS.saturation_users(RUBIS.web_s)
        assert knee > 2900

    def test_get_calibration(self):
        assert get_calibration("RUBiS") is RUBIS
        with pytest.raises(WorkloadError):
            get_calibration("tpcw")

    def test_bad_ratio_rejected(self):
        with pytest.raises(WorkloadError):
            RUBIS.app_mean(1.5)

    def test_bad_replicas_rejected(self):
        with pytest.raises(WorkloadError):
            RUBIS.db_backend_mean(0.15, 0)


@settings(max_examples=30, deadline=None)
@given(ratio=st.floats(min_value=0.0, max_value=0.9))
def test_rubis_mix_write_mass_property(ratio):
    mix = mix_for_write_ratio(rubis.INTERACTIONS, ratio)
    assert sum(mix) == pytest.approx(1.0)
    write_mass = sum(share for i, share in zip(rubis.INTERACTIONS, mix)
                     if i.is_write)
    assert write_mass == pytest.approx(ratio, abs=1e-9)


@settings(max_examples=20, deadline=None)
@given(ratio=st.floats(min_value=0.0, max_value=0.9))
def test_rubis_demands_positive_property(ratio):
    model = rubis.build_model(ratio)
    for name in rubis.STATE_NAMES:
        demand = model.demand(name)
        assert demand.app_s > 0
        assert demand.db_s > 0


class TestMixBoundaries:
    """Edge cases of mix construction: the exact endpoints of the
    write-ratio axis and degenerate single-interaction catalogs."""

    READ = Interaction(name="browse", is_write=False, popularity=3.0)
    READ2 = Interaction(name="view", is_write=False, popularity=1.0)
    WRITE = Interaction(name="bid", is_write=True, popularity=2.0)

    def test_ratio_zero_puts_no_mass_on_writes(self):
        catalog = (self.READ, self.READ2, self.WRITE)
        mix = mix_for_write_ratio(catalog, 0.0)
        assert sum(mix) == pytest.approx(1.0)
        assert mix[2] == 0.0
        # Read mass splits by popularity: 3:1.
        assert mix[0] == pytest.approx(0.75)
        assert mix[1] == pytest.approx(0.25)

    def test_ratio_one_puts_all_mass_on_writes(self):
        catalog = (self.READ, self.WRITE)
        mix = mix_for_write_ratio(catalog, 1.0)
        assert mix == [0.0, 1.0]

    def test_single_read_interaction_at_ratio_zero(self):
        assert mix_for_write_ratio((self.READ,), 0.0) == [1.0]

    def test_single_write_interaction_at_ratio_one(self):
        assert mix_for_write_ratio((self.WRITE,), 1.0) == [1.0]

    def test_ratio_zero_without_reads_is_rejected(self):
        with pytest.raises(WorkloadError, match="no read"):
            mix_for_write_ratio((self.WRITE,), 0.0)

    def test_positive_ratio_without_writes_is_rejected(self):
        with pytest.raises(WorkloadError, match="no write"):
            mix_for_write_ratio((self.READ,), 0.5)


class TestNormalizedDemandBoundaries:
    READ = Interaction(name="browse", is_write=False,
                       app_weight=2.0, db_weight=0.5)
    WRITE = Interaction(name="bid", is_write=True,
                        app_weight=1.0, db_weight=4.0)

    def _demands(self, catalog, mix):
        return normalized_demands(
            catalog, mix, web_s=0.001, app_read_s=0.010,
            app_write_s=0.006, db_read_s=0.004, db_write_s=0.020)

    def test_single_interaction_mix_hits_targets_exactly(self):
        demands = self._demands((self.READ,), [1.0])
        demand = demands["browse"]
        assert demand.app_s == pytest.approx(0.010)
        assert demand.db_s == pytest.approx(0.004)
        assert demand.web_s == pytest.approx(0.001)

    def test_zero_mass_class_falls_back_to_the_target(self):
        # At write_ratio 0 the write class has no mix mass; its
        # members still get well-defined (target) demands rather than
        # a division by zero.
        demands = self._demands((self.READ, self.WRITE), [1.0, 0.0])
        assert demands["bid"].app_s == pytest.approx(0.006)
        assert demands["bid"].db_s == pytest.approx(0.020)

    def test_mix_weighted_class_mean_is_exact_at_ratio_one(self):
        demands = self._demands((self.READ, self.WRITE), [0.0, 1.0])
        assert demands["bid"].app_s == pytest.approx(0.006)
        assert demands["bid"].db_s == pytest.approx(0.020)
        assert demands["browse"].app_s == pytest.approx(0.010)
