"""Hot-path caching plane tests: correctness, invalidation, identity.

The caches exist to make campaigns cheap, but their contract is that
they are *invisible*: every artifact a cached path produces must be
byte-identical to what a cache-free build produces, results databases
included.  These tests pin that contract — plus the cache-specific
hazards: stale entries after a resource-model change, shared ASTs
leaking execution state, cloned clusters sharing mutable host state.
"""

import multiprocessing

import pytest

from repro import FaultPlan, FaultSpec, RetryPolicy, hotpath, run_campaign
from repro.experiments.scheduler import TrialScheduler, enumerate_tasks
from repro.generator.mulini import Mulini
from repro.shellvm import ShellInterpreter, parse
from repro.spec import get_platform
from repro.spec.mof import load_resource_model, render_resource_mof
from repro.spec.tbl import parse as parse_tbl
from repro.vcluster import VirtualCluster, VirtualHost, VirtualNetwork

SWEEP_TBL = """
benchmark rubis; platform emulab;
experiment "sweep" {
    topology 1-1-1, 1-2-1;
    workload 100, 200;
    write_ratio 15%;
    trial { warmup 3s; run 15s; cooldown 3s; }
}
"""

CHAOS_TBL = """
benchmark rubis; platform emulab;
experiment "chaos" {
    topology 1-1-1, 1-2-1;
    workload 100, 200;
    write_ratio 15%;
    trial { warmup 3s; run 15s; cooldown 3s; }
}
"""

CHAOS_PLAN = FaultPlan([
    FaultSpec(kind="host-crash", target="node-*", rate=0.5),
    FaultSpec(kind="monitor-truncate", rate=0.4),
], seed=11)

CHAOS_RETRY = RetryPolicy(max_attempts=3, quarantine_after=10)

#: Every persistent table — the caches must be invisible in all of them.
ALL_TABLES = ("trials", "host_cpu", "state_metrics", "spans", "failures")


@pytest.fixture(autouse=True)
def fresh_caches():
    """Each test starts cold with caches on, and leaves them that way."""
    hotpath.set_enabled(True)
    hotpath.clear()
    yield
    hotpath.set_enabled(True)
    hotpath.clear()


def full_dump(database):
    return {table: database.dump_rows(table) for table in ALL_TABLES}


# ---------------------------------------------------------------------------
# The switch and the memo table


class TestMemoCache:
    def test_hit_returns_stored_object(self):
        cache = hotpath.MemoCache("test.basic", capacity=8)
        built = []

        def build():
            built.append(1)
            return {"value": 42}

        first = cache.get("k", build)
        second = cache.get("k", build)
        assert first is second
        assert built == [1]
        assert cache.snapshot_stats() == {"entries": 1, "hits": 1,
                                          "misses": 1}

    def test_disabled_bypasses_and_empties(self):
        cache = hotpath.MemoCache("test.switch", capacity=8)
        cache.get("k", lambda: "v")
        with hotpath.caches_disabled():
            assert not hotpath.enabled()
            assert cache.snapshot_stats()["entries"] == 0
            one = cache.get("k", lambda: [1])
            two = cache.get("k", lambda: [1])
            assert one is not two       # no interning while disabled
        assert hotpath.enabled()

    def test_capacity_is_a_backstop_not_an_error(self):
        cache = hotpath.MemoCache("test.cap", capacity=2)
        for key in range(5):
            cache.get(key, lambda k=key: k)
        assert cache.snapshot_stats()["entries"] <= 2
        assert cache.get(99, lambda: "fresh") == "fresh"

    def test_overflow_evicts_oldest_entry_only(self):
        # Regression: overflow must evict FIFO, never flush the table —
        # a flush would cold-start every concurrent tenant the moment
        # one campaign overflows.
        cache = hotpath.MemoCache("test.fifo", capacity=3)
        for key in ("a", "b", "c"):
            cache.get(key, lambda k=key: k.upper())
        cache.get("d", lambda: "D")          # evicts "a", keeps b/c
        built = []
        for key in ("b", "c", "d"):
            cache.get(key, lambda: built.append(key))
        assert built == []                   # survivors still served
        cache.get("a", lambda: built.append("a"))
        assert built == ["a"]                # the oldest was the victim

    def test_concurrent_same_key_reads_are_consistent(self):
        # Regression: reads take the table lock, so racing threads see
        # either a miss (and build) or the stored object — never a
        # torn/partial entry.  Every returned value must be correct.
        import threading

        cache = hotpath.MemoCache("test.race", capacity=64)
        results = []

        def probe():
            for i in range(200):
                results.append(cache.get(i % 8, lambda k=i % 8: k * 10))

        threads = [threading.Thread(target=probe) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = cache.snapshot_stats()
        assert stats["hits"] + stats["misses"] == 8 * 200
        assert set(results) == {k * 10 for k in range(8)}
        assert all(cache.get(k, lambda: "wrong") == k * 10
                   for k in range(8))


# ---------------------------------------------------------------------------
# Tenant plane: shared tables, per-campaign attribution and switches


class TestTenantPlane:
    def test_two_tenants_share_entries_but_not_attribution(self):
        cache = hotpath.MemoCache("test.tenants", capacity=8)
        with hotpath.tenant("camp-a"):
            cache.get("k", lambda: "v")          # a: miss
            cache.get("k", lambda: "v")          # a: hit
        with hotpath.tenant("camp-b"):
            cache.get("k", lambda: "v")          # b: hit on a's entry
        a = cache.snapshot_stats(tenant="camp-a")
        b = cache.snapshot_stats(tenant="camp-b")
        assert (a["hits"], a["misses"]) == (1, 1)
        assert (b["hits"], b["misses"]) == (1, 0)
        # Entries belong to the plane: both tenants see the shared size,
        # and the plane-wide counters aggregate both campaigns.
        assert a["entries"] == b["entries"] == 1
        plane = cache.snapshot_stats()
        assert (plane["hits"], plane["misses"]) == (2, 1)
        assert hotpath.stats(tenant="camp-b")["test.tenants"]["hits"] == 1
        assert set(hotpath.tenants()) >= {"camp-a", "camp-b"}

    def test_tenant_disable_does_not_flip_concurrent_tenant(self):
        cache = hotpath.MemoCache("test.tenantswitch", capacity=8)
        with hotpath.tenant("camp-a"):
            cache.get("k", lambda: ["shared"])
        try:
            with hotpath.tenant("camp-a"), hotpath.caches_disabled():
                # Campaign A is cache-free: fresh builds, no interning...
                assert not hotpath.enabled()
                one = cache.get("k", lambda: ["fresh"])
                two = cache.get("k", lambda: ["fresh"])
                assert one == two == ["fresh"] and one is not two
                # ...while the shared table keeps its entries and a
                # concurrent campaign keeps hitting them.  (Scopes are
                # thread-local; entering B's scope here stands in for
                # B's worker thread running between A's lookups.)
                with hotpath.tenant("camp-b"):
                    assert hotpath.enabled()
                    assert cache.get("k", lambda: ["fresh"]) == ["shared"]
            with hotpath.tenant("camp-a"):
                assert hotpath.enabled()     # scope exit re-enabled A
                assert cache.get("k", lambda: ["fresh"]) == ["shared"]
            b = cache.snapshot_stats(tenant="camp-b")
            assert (b["hits"], b["misses"]) == (1, 0)
            # A's bypassed lookups were not attributed as table traffic.
            a = cache.snapshot_stats(tenant="camp-a")
            assert (a["hits"], a["misses"]) == (1, 1)
        finally:
            hotpath.set_tenant_enabled("camp-a", True)

    def test_global_disable_still_clears_and_covers_all_tenants(self):
        cache = hotpath.MemoCache("test.globalswitch", capacity=8)
        with hotpath.tenant("camp-a"):
            cache.get("k", lambda: "v")
        with hotpath.caches_disabled():      # outside any tenant scope
            assert cache.snapshot_stats()["entries"] == 0
            with hotpath.tenant("camp-b"):
                assert not hotpath.enabled()
        assert hotpath.enabled()


# ---------------------------------------------------------------------------
# Bundle cache: identity and invalidation


class TestBundleCache:
    def _model(self, extra_mof=""):
        return load_resource_model(
            render_resource_mof("rubis", "emulab") + extra_mof)

    def _experiment(self):
        return parse_tbl(SWEEP_TBL).experiments[0]

    def test_cached_bundles_byte_identical_to_fresh(self):
        experiment = self._experiment()
        with hotpath.caches_disabled():
            fresh = {
                (topology.label(), workload, write_ratio):
                    Mulini(self._model()).generate(
                        experiment, topology, workload, write_ratio).files
                for topology, workload, write_ratio in experiment.points()
            }
        hotpath.clear()
        mulini = Mulini(self._model())
        for topology, workload, write_ratio in experiment.points():
            bundle = mulini.generate(experiment, topology, workload,
                                     write_ratio)
            key = (topology.label(), workload, write_ratio)
            assert bundle.files == fresh[key]
        # The sweep must actually have exercised the chassis cache:
        # 2 topologies -> 2 chassis misses, the other points reuse them.
        stats = hotpath.stats()["generator.chassis"]
        assert stats["misses"] == 2
        assert stats["hits"] == 2

    def test_exact_point_cache_serves_repeats(self):
        experiment = self._experiment()
        mulini = Mulini(self._model())
        topology, workload, write_ratio = next(iter(experiment.points()))
        first = mulini.generate(experiment, topology, workload, write_ratio)
        second = mulini.generate(experiment, topology, workload, write_ratio)
        assert first.files == second.files
        assert first is not second          # fresh Bundle, shared strings
        assert hotpath.stats()["generator.bundle"]["hits"] == 1

    def test_resource_model_change_invalidates(self):
        experiment = self._experiment()
        topology, workload, write_ratio = next(iter(experiment.points()))
        # Warm the cache with the stock model...
        default = Mulini(self._model()).generate(
            experiment, topology, workload, write_ratio)
        # ...then generate against a model with a package override:
        # the warm cache must not serve the stock chassis for it.
        tuned_model = self._model("""
        instance of Elba_PackageOverride {
            Package = "jonas";
            WorkerPool = 64;
        };
        """)
        cached = Mulini(tuned_model).generate(
            experiment, topology, workload, write_ratio)
        with hotpath.caches_disabled():
            fresh = Mulini(tuned_model).generate(
                experiment, topology, workload, write_ratio)
        assert cached.files == fresh.files
        assert cached.files != default.files


# ---------------------------------------------------------------------------
# Parse cache: interning without state leakage


class TestParseCache:
    def test_identical_text_is_interned(self):
        text = "X=1\necho $X\n"
        assert parse(text) is parse(text)
        with hotpath.caches_disabled():
            assert parse(text) is not parse(text)

    def test_shared_ast_executes_independently(self):
        network = VirtualNetwork()
        node_type = get_platform("warp").node_type()
        for name in ("node-1", "node-2"):
            network.attach(VirtualHost(name, node_type))
        interp = ShellInterpreter(network)
        script = (
            "echo tier=$TIER >> /tmp/report\n"
            "cat /tmp/report\n"
        )
        host_one = network.host("node-1")
        host_two = network.host("node-2")
        # Same text, so both executions run the same interned AST; each
        # must see only its own host's filesystem and variables.
        status, out_app = interp.run_text_on(host_one, script,
                                             variables={"TIER": "app"})
        assert status == 0
        status, out_db = interp.run_text_on(host_two, script,
                                            variables={"TIER": "db"})
        assert status == 0
        assert out_app.strip() == "tier=app"
        assert out_db.strip() == "tier=db"
        # Re-running on a mutated environment appends, never replays
        # stale state from the first execution.
        status, again = interp.run_text_on(host_one, script,
                                           variables={"TIER": "web"})
        assert status == 0
        assert again.strip().split("\n") == ["tier=app", "tier=web"]


# ---------------------------------------------------------------------------
# Cheap cluster clones: shared pristine state, isolated mutation


class TestClusterClone:
    def test_clone_matches_fresh_cluster(self):
        cluster = VirtualCluster("emulab", node_count=5)
        clone = cluster.clone()
        with hotpath.caches_disabled():
            stock = VirtualCluster("emulab", node_count=5)
        for fs in (clone.control.fs, stock.control.fs):
            assert list(fs.walk_files("/packages"))
        assert {path: clone.control.fs.read(path)
                for path in clone.control.fs.walk_files("/")} == \
               {path: stock.control.fs.read(path)
                for path in stock.control.fs.walk_files("/")}

    def test_clone_mutation_never_crosses_clusters(self):
        cluster = VirtualCluster("emulab", node_count=5)
        clone_a = cluster.clone()
        clone_b = cluster.clone()
        archive = next(iter(clone_a.control.fs.walk_files("/packages")))
        original = clone_a.control.fs.read(archive)
        clone_a.control.fs.write(archive, "CORRUPTED\n")
        assert clone_b.control.fs.read(archive) == original
        assert cluster.control.fs.read(archive) == original
        # Even a clone taken *after* the corruption starts pristine:
        # clones derive from the parent's pristine snapshot, not from
        # whatever a fault plan did to the parent since.
        cluster.control.fs.write(archive, "ALSO CORRUPTED\n")
        assert cluster.clone().control.fs.read(archive) == original

    def test_clone_works_with_caches_disabled(self):
        with hotpath.caches_disabled():
            cluster = VirtualCluster("emulab", node_count=5)
            clone = cluster.clone()
            archive = next(iter(clone.control.fs.walk_files("/packages")))
            assert clone.control.fs.read(archive) == \
                cluster.control.fs.read(archive)


# ---------------------------------------------------------------------------
# Scheduler: process backend falls back when results cannot pickle


class FallbackRunner:
    """Returns results that cannot cross a process boundary."""

    def run_task(self, task):
        return {"index": task.index, "callback": lambda: None}


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="process backend needs fork")
class TestProcessFallback:
    def test_unpicklable_results_fall_back_to_threads(self):
        tasks = enumerate_tasks(parse_tbl(SWEEP_TBL).experiments[0])
        scheduler = TrialScheduler(FallbackRunner, jobs=2,
                                   backend="process")
        with pytest.warns(RuntimeWarning, match="falling back"):
            results = scheduler.run(tasks)
        assert [r["index"] for r in results] == [t.index for t in tasks]
        assert all(callable(r["callback"]) for r in results)


# ---------------------------------------------------------------------------
# The headline invariant: a cached chaos campaign stores the same bytes


class TestCampaignIdentity:
    def test_parallel_chaos_campaign_identical_with_caches(self):
        # No tracer: span attributes carry the executing worker's name,
        # which legitimately differs across jobs counts.  Everything
        # else — including the failures the fault plan injects — must
        # be byte-identical between a cache-free sequential run and a
        # cached jobs=4 run.
        with hotpath.caches_disabled():
            reference = run_campaign(CHAOS_TBL, faults=CHAOS_PLAN,
                                     retry=CHAOS_RETRY)
        hotpath.clear()
        report = run_campaign(CHAOS_TBL, faults=CHAOS_PLAN,
                              retry=CHAOS_RETRY, jobs=4, backend="thread")
        assert report.dnf == 0
        assert report.database.failure_count() > 0
        assert full_dump(report.database) == full_dump(reference.database)
        assert report.database.integrity_check() == []
        assert reference.database.integrity_check() == []
        # The run must actually have hit the caches, or the identity
        # assertion proved nothing.
        stats = hotpath.stats()
        assert stats["generator.chassis"]["hits"] > 0
        assert stats["shellvm.parse"]["hits"] > 0
