"""Planner plane tests: frontier, policies, loop, adaptive campaigns.

The contracts under test:

- decisions are pure functions of recorded observations, so the same
  policy over the same spec yields the same decision log and
  byte-identical executed-trial tables at any worker count;
- an adaptive exploration only ever runs points of the declared grid;
- a killed exploration resumes to the same database as an
  uninterrupted one;
- GridPolicy reproduces today's exhaustive campaign exactly.
"""

import pytest

from repro.api import plan_campaign, resume_campaign, run_adaptive
from repro.core.campaign import (
    META_PLANNER_EXPERIMENT,
    META_PLANNER_POLICY,
    ObservationCampaign,
)
from repro.errors import ExperimentError
from repro.planner import (
    AdaptivePlanner,
    BudgetedExplorer,
    Decision,
    GridPolicy,
    KneeBisectionPolicy,
    ObservationFrontier,
    TopologyPromotionPolicy,
    make_policy,
    plan_preview,
)
from repro.planner.policy import (
    BUDGET_EXHAUSTED,
    KNEE,
    MEASURE,
    NO_KNEE,
    PROMOTE,
    STOP,
)
from repro.spec.tbl import parse as parse_tbl

# One topology, an 8-rung workload ladder with its SLO knee at u=200:
# the grid costs 8 trials, the bisection 4.
KNEE_TBL = """
benchmark rubis;
platform emulab;

experiment "adaptive" {
    topology 1-1-1;
    workload 100, 200, 300, 400, 500, 600, 700, 800;
    write_ratio 15%;
    trial { warmup 2s; run 10s; cooldown 2s; }
    slo { response_time 1.0s; error_ratio 10%; }
}
"""

# A topology family for the promotion walk: the app tier saturates
# first, so the walk should climb the app ladder and never touch the
# topologies the observations don't call for.
PROMO_TBL = """
benchmark rubis;
platform emulab;

experiment "promo" {
    topology 1-1-1, 1-2-1, 1-2-2, 1-4-2;
    workload 100, 300, 500, 700;
    write_ratio 15%;
    trial { warmup 2s; run 10s; cooldown 2s; }
    slo { response_time 1.0s; error_ratio 10%; }
}
"""


def experiment_of(tbl):
    return parse_tbl(tbl).experiments[0]


def observation_dump(database):
    assert database.integrity_check() == []
    return {
        table: database.dump_rows(table)
        for table in ("trials", "host_cpu", "state_metrics",
                      "planner_decisions")
    }


class TestObservationFrontier:
    def test_universe_is_the_declared_grid(self):
        frontier = ObservationFrontier(experiment_of(KNEE_TBL))
        assert len(frontier.universe) == 8
        assert frontier.workloads() == [100, 200, 300, 400,
                                        500, 600, 700, 800]
        assert [t.label() for t in frontier.topologies()] == ["1-1-1"]

    def test_point_outside_universe_raises(self):
        frontier = ObservationFrontier(experiment_of(KNEE_TBL))
        topology = frontier.topologies()[0]
        with pytest.raises(ExperimentError, match="not a sweep point"):
            frontier.point(topology, 999, 0.15)

    def test_prune_never_overrides_a_measurement(self):
        frontier = ObservationFrontier(experiment_of(KNEE_TBL))
        point = frontier.universe[0]
        frontier.observe(point, object())
        frontier.prune(point, "should not stick")
        assert frontier.is_measured(point)
        assert not frontier.is_pruned(point)

    def test_unresolved_excludes_pending(self):
        frontier = ObservationFrontier(experiment_of(KNEE_TBL))
        frontier.mark_pending(frontier.universe[0])
        assert frontier.universe[0] not in frontier.unresolved()
        assert len(frontier.unresolved()) == 7


class TestPolicies:
    def test_make_policy_names(self):
        assert make_policy("grid").name == "grid"
        assert make_policy("knee").name == "knee"
        assert make_policy("promote").name == "promote"
        with pytest.raises(ExperimentError, match="unknown planner"):
            make_policy("genetic")

    def test_budget_wrapping_keeps_inner_name(self):
        policy = make_policy("knee", budget=4)
        assert isinstance(policy, BudgetedExplorer)
        assert policy.name == "knee"
        with pytest.raises(ExperimentError, match="at least 1"):
            make_policy("knee", budget=0)

    def test_grid_policy_proposes_canonical_order(self):
        frontier = ObservationFrontier(experiment_of(PROMO_TBL))
        decisions = GridPolicy().propose(frontier)
        assert all(d.action == MEASURE for d in decisions)
        assert [d.point for d in decisions] == list(frontier.universe)

    def test_knee_first_round_is_the_endpoints(self):
        preview = plan_preview(experiment_of(KNEE_TBL),
                               KneeBisectionPolicy())
        workloads = [d.workload for d in preview.decisions]
        assert workloads == [100, 800]

    def test_budget_defers_and_stops(self):
        frontier = ObservationFrontier(experiment_of(KNEE_TBL))
        policy = BudgetedExplorer(GridPolicy(), budget=3)
        decisions = policy.propose(frontier)
        measures = [d for d in decisions if d.action == MEASURE]
        assert len(measures) == 3
        assert decisions[-1].action == BUDGET_EXHAUSTED
        assert "5 proposed point(s) deferred" in decisions[-1].reason
        assert policy.propose(frontier) == []

    def test_decision_equality_ignores_live_point(self):
        frontier = ObservationFrontier(experiment_of(KNEE_TBL))
        a = Decision.measure(frontier.universe[0], "why")
        b = Decision(action=MEASURE, reason="why", topology="1-1-1",
                     workload=100, write_ratio=0.15)
        assert a == b


class TestAdaptiveKnee:
    def _explore(self, jobs=1, **kwargs):
        campaign = ObservationCampaign(KNEE_TBL, node_count=8)
        report = campaign.run_adaptive(
            policy="knee", jobs=jobs,
            backend="thread" if jobs > 1 else None, **kwargs)
        return campaign, report

    def test_finds_knee_with_half_the_trials(self):
        campaign, report = self._explore()
        outcome = report.outcome
        assert outcome.converged and not outcome.budget_exhausted
        assert outcome.executed == 4            # grid would run 8
        assert outcome.savings_ratio() >= 0.5
        knees = [d for d in outcome.knees if d.action == KNEE]
        assert len(knees) == 1
        assert knees[0].workload == 200

    def test_knee_matches_the_exhaustive_grid(self):
        from repro.core.bottleneck import slo_violated

        campaign, report = self._explore()
        grid = ObservationCampaign(KNEE_TBL, node_count=8)
        grid.run()
        experiment = grid.spec.experiments[0]
        violating = sorted(
            r.workload for r in grid.database.query()
            if slo_violated(r, experiment.slo))
        assert report.outcome.knees[0].workload == violating[0]

    def test_decision_log_persisted_in_order(self):
        campaign, _report = self._explore()
        decisions = campaign.database.planner_decisions()
        assert [(d["round"], d["seq"]) for d in decisions] == \
            sorted((d["round"], d["seq"]) for d in decisions)
        actions = [d["action"] for d in decisions]
        assert actions[-1] == "converged"
        assert "knee" in actions

    def test_jobs_do_not_change_decisions_or_rows(self):
        campaign_1, _ = self._explore(jobs=1)
        campaign_4, _ = self._explore(jobs=4)
        assert observation_dump(campaign_1.database) == \
            observation_dump(campaign_4.database)

    def test_measured_points_are_a_subset_of_the_grid(self):
        campaign, _report = self._explore()
        grid_keys = {
            (t.label(), w, round(wr, 6))
            for t, w, wr in campaign.spec.experiments[0].points()
        }
        for result in campaign.database.query():
            assert result.key() in grid_keys

    def test_no_knee_when_slo_never_breaks(self):
        relaxed = KNEE_TBL.replace(
            "workload 100, 200, 300, 400, 500, 600, 700, 800;",
            "workload 10, 25, 50, 75, 100;")
        campaign = ObservationCampaign(relaxed, node_count=8)
        report = campaign.run_adaptive(policy="knee")
        outcome = report.outcome
        assert outcome.executed == 2             # the two endpoints
        assert [d.action for d in outcome.knees] == [NO_KNEE]

    def test_budget_exhaustion_is_recorded(self):
        campaign, report = self._explore(budget=2)
        assert report.outcome.budget_exhausted
        assert not report.outcome.converged
        assert report.outcome.executed == 2
        actions = [d["action"] for d in
                   campaign.database.planner_decisions()]
        assert "budget-exhausted" in actions
        assert campaign.database.get_meta("planner_budget") == "2"

    def test_report_carries_planner_and_cache_lines(self):
        _campaign, report = self._explore()
        summary = report.summary()
        assert "policy knee" in summary
        assert "pruned" in summary
        assert report.policy == "knee"
        assert report.rounds == report.outcome.rounds
        assert isinstance(report.cache_stats, dict)


class TestAdaptivePromotion:
    def test_walk_promotes_only_the_saturated_tier(self):
        campaign = ObservationCampaign(PROMO_TBL, node_count=12)
        report = campaign.run_adaptive(policy="promote")
        decisions = campaign.database.planner_decisions()
        promotions = [d for d in decisions if d["action"] == PROMOTE]
        assert [d["topology"] for d in promotions] == ["1-2-1", "1-4-2"]
        # 1-2-2 adds a DB server the observations never called for: the
        # walk must not have measured it.
        measured = {r.topology_label for r in campaign.database.query()}
        assert "1-2-2" not in measured
        assert report.outcome.executed < 16      # grid size

    def test_walk_stops_with_a_recorded_reason(self):
        campaign = ObservationCampaign(PROMO_TBL, node_count=12)
        campaign.run_adaptive(policy="promote")
        stops = [d for d in campaign.database.planner_decisions()
                 if d["action"] == STOP]
        assert len(stops) == 1
        assert "heaviest workload" in stops[0]["reason"]


class TestGridEquivalence:
    def test_grid_policy_stores_exactly_the_fixed_sweep(self):
        adaptive = ObservationCampaign(KNEE_TBL, node_count=8)
        adaptive.run_adaptive(policy="grid")
        fixed = ObservationCampaign(KNEE_TBL, node_count=8)
        fixed.run()
        for table in ("trials", "host_cpu", "state_metrics"):
            assert adaptive.database.dump_rows(table) == \
                fixed.database.dump_rows(table)


class TestResumeAdaptive:
    class _Kill(Exception):
        pass

    def _killed_database(self, after):
        campaign = ObservationCampaign(KNEE_TBL, node_count=8)
        seen = []

        def killer(result):
            seen.append(result)
            if len(seen) == after:
                raise self._Kill()

        with pytest.raises(self._Kill):
            campaign.run_adaptive(policy="knee", on_result=killer)
        return campaign.database

    def test_killed_exploration_resumes_byte_identically(self):
        reference = ObservationCampaign(KNEE_TBL, node_count=8)
        reference.run_adaptive(policy="knee")
        database = self._killed_database(after=2)
        assert database.count() == 2
        report = resume_campaign(database)
        assert report.skipped == 2
        assert observation_dump(database) == \
            observation_dump(reference.database)

    def test_resume_dispatches_on_planner_meta(self):
        database = self._killed_database(after=1)
        assert database.get_meta(META_PLANNER_POLICY) == "knee"
        assert database.get_meta(META_PLANNER_EXPERIMENT) == "adaptive"
        report = resume_campaign(database)
        assert report.policy == "knee"
        assert report.outcome is not None

    def test_completed_exploration_resumes_to_a_noop(self):
        campaign = ObservationCampaign(KNEE_TBL, node_count=8)
        first = campaign.run_adaptive(policy="knee")
        again = campaign.run_adaptive(policy="knee", resume=True)
        assert again.trials == 0
        assert again.skipped == first.trials
        assert observation_dump(campaign.database)["trials"] != []


class TestAdaptiveApi:
    def test_run_adaptive_facade(self):
        report = run_adaptive(KNEE_TBL, policy="knee", node_count=8)
        assert report.outcome.executed == 4
        assert report.database.decision_count() > 0

    def test_plan_campaign_is_a_pure_dry_run(self):
        preview = plan_campaign(KNEE_TBL, policy="knee")
        assert preview.policy_name == "knee"
        assert preview.universe == 8
        assert len(preview.decisions) == 2
        assert "bisection endpoint" in preview.describe()

    def test_multi_experiment_spec_needs_a_name(self):
        tbl = """
        benchmark rubis; platform emulab;
        experiment "a" { topology 1-1-1; workload 100; write_ratio 15%;
            trial { warmup 1s; run 5s; cooldown 1s; } }
        experiment "b" { topology 1-1-1; workload 100; write_ratio 15%;
            trial { warmup 1s; run 5s; cooldown 1s; } }
        """
        with pytest.raises(ExperimentError, match="targets one"):
            run_adaptive(tbl, node_count=8)
        report = run_adaptive(tbl, experiment="b", node_count=8)
        assert report.experiments == ["b"]


class TestPlannerLoopContract:
    def test_execute_must_align_results(self):
        experiment = experiment_of(KNEE_TBL)
        planner = AdaptivePlanner(experiment, KneeBisectionPolicy())
        with pytest.raises(RuntimeError, match="result"):
            planner.run(lambda tasks: [])

    def test_promotion_policy_is_replayable(self):
        # Two fresh policy instances fed the same observations make the
        # same decisions — the property resume relies on.
        experiment = experiment_of(PROMO_TBL)
        campaign = ObservationCampaign(PROMO_TBL, node_count=12)

        def run_with(policy):
            planner = AdaptivePlanner(experiment, policy)
            log = []

            def execute(tasks):
                return [campaign.runner.run_task(task) for task in tasks]

            outcome = planner.run(
                execute,
                on_round=lambda n, ds: log.extend(
                    (n, d.action, d.topology, d.workload, d.reason)
                    for d in ds))
            return log, outcome.executed

        first = run_with(TopologyPromotionPolicy())
        second = run_with(TopologyPromotionPolicy())
        assert first == second


class TestTraceReportSections:
    def test_planner_and_cache_sections_render(self):
        from repro.obs import Tracer
        from repro.obs.report import render_trace_report

        campaign = ObservationCampaign(KNEE_TBL, node_count=8,
                                       tracer=Tracer())
        campaign.run_adaptive(policy="knee")
        report = render_trace_report(campaign.database)
        assert "Planner decisions" in report
        assert "policy 'knee'" in report
        assert "Hot-path caches" in report

    def test_fixed_grid_trace_has_no_planner_section(self):
        from repro.obs import Tracer
        from repro.obs.report import render_trace_report

        campaign = ObservationCampaign(KNEE_TBL, node_count=8,
                                       tracer=Tracer())
        campaign.run()
        report = render_trace_report(campaign.database)
        assert "Planner decisions" not in report
