"""Cross-validation anchors: simulation vs theory, determinism, means.

These tests pin the simulator to analytically known results wherever
product-form theory applies, so calibration drift or event-loop bugs
cannot silently bend the reproduced figures.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import NTierSimulation, mva
from repro.workloads.calibration import RUBIS
from repro.workloads.interactions import (
    Interaction,
    mix_for_write_ratio,
    normalized_demands,
)
from tests.conftest import make_driver, make_system


class TestSimVsMvaFullHarness:
    """The full 3-tier harness against exact MVA at moderate load."""

    def _observe(self, users):
        driver = make_driver(users=users, warmup=20.0, run=60.0,
                             cooldown=5.0, timeout=100.0)
        system = make_system(driver=driver)
        harness = NTierSimulation(system)
        records = harness.run()
        window = (20.0, 80.0)
        ok = [r for r in records
              if r.status == "ok" and window[0] <= r.finished_at
              <= window[1]]
        throughput = len(ok) / 60.0
        mean_rt = sum(r.response_time() for r in ok) / len(ok)
        return throughput, mean_rt

    def _predict(self, users):
        stations = [
            mva.MvaStation("web", RUBIS.web_s),
            mva.MvaStation("app", RUBIS.app_mean(0.15)),
            mva.MvaStation("db", RUBIS.db_mean(0.15)),
        ]
        return mva.solve(stations, RUBIS.think_time_s, users)

    @pytest.mark.parametrize("users", [60, 140, 200])
    def test_throughput_tracks_mva(self, users):
        observed_x, _rt = self._observe(users)
        predicted = self._predict(users)
        assert observed_x == pytest.approx(predicted.throughput, rel=0.08)

    def test_response_time_tracks_mva_below_knee(self):
        _x, observed_rt = self._observe(140)
        predicted = self._predict(140)
        # Allow the hop latencies and disk stage the MVA model omits.
        overhead = 6 * 0.0002 + 0.001
        assert observed_rt == pytest.approx(
            predicted.response_time + overhead, rel=0.30)


class TestDeterminismEndToEnd:
    def test_campaign_csv_identical_across_runs(self):
        from repro.core import ObservationCampaign
        from repro.results.export import to_csv

        tbl = """
        benchmark rubis; platform emulab;
        experiment "det" {
            topology 1-1-1; workload 120;
            trial { warmup 14s; run 12s; cooldown 2s; }
            seed 99;
        }
        """

        def run_once():
            campaign = ObservationCampaign(tbl, node_count=8)
            campaign.run()
            return to_csv(campaign.database.query())

        assert run_once() == run_once()


@settings(max_examples=40, deadline=None)
@given(
    ratio=st.floats(min_value=0.05, max_value=0.9),
    read_weights=st.lists(st.floats(min_value=0.2, max_value=3.0),
                          min_size=2, max_size=6),
    write_weights=st.lists(st.floats(min_value=0.2, max_value=3.0),
                           min_size=1, max_size=4),
)
def test_normalized_demands_preserve_class_means(ratio, read_weights,
                                                 write_weights):
    """For ANY weight profile, the mix-weighted class means equal the
    calibration targets exactly — the normalization invariant the
    figure shapes depend on."""
    interactions = tuple(
        Interaction(f"r{i}", False, app_weight=w, db_weight=w,
                    popularity=1.0 + i)
        for i, w in enumerate(read_weights)
    ) + tuple(
        Interaction(f"w{i}", True, app_weight=w, db_weight=w,
                    popularity=1.0 + i)
        for i, w in enumerate(write_weights)
    )
    mix = mix_for_write_ratio(interactions, ratio)
    demands = normalized_demands(
        interactions, mix,
        web_s=0.001, app_read_s=0.03, app_write_s=0.004,
        db_read_s=0.004, db_write_s=0.005,
    )
    app_mean = sum(share * demands[i.name].app_s
                   for i, share in zip(interactions, mix))
    db_mean = sum(share * demands[i.name].db_s
                  for i, share in zip(interactions, mix))
    expected_app = (1 - ratio) * 0.03 + ratio * 0.004
    expected_db = (1 - ratio) * 0.004 + ratio * 0.005
    assert app_mean == pytest.approx(expected_app, rel=1e-9)
    assert db_mean == pytest.approx(expected_db, rel=1e-9)
