"""Tests for the database disk-I/O substrate."""

import pytest

from repro.monitoring import attach_monitors, parse_sysstat
from repro.sim import NTierSimulation
from repro.workloads.calibration import (
    DB_DISK_READ_S,
    DB_DISK_WRITE_S,
    disk_speed_factor,
)
from repro.spec import get_platform
from tests.conftest import make_driver, make_system


def run_system(platform="emulab", users=200, write_ratio=0.15, dbs=1,
               run=25.0):
    driver = make_driver(users=users, write_ratio=write_ratio,
                         warmup=14.0, run=run, cooldown=4.0)
    system = make_system(apps=2, dbs=dbs, driver=driver,
                         platform=platform)
    harness = NTierSimulation(system)
    emitters = attach_monitors(harness)
    harness.run()
    for emitter in emitters:
        emitter.stop()
        emitter.flush()
    return system, harness


class TestDiskSpeedFactors:
    def test_reference_spindle(self):
        assert disk_speed_factor(
            get_platform("rohan").node_type()) == pytest.approx(1.0)

    def test_warp_5400rpm_slower(self):
        assert disk_speed_factor(
            get_platform("warp").node_type()) == pytest.approx(0.54)

    def test_write_io_heavier_than_read(self):
        assert DB_DISK_WRITE_S > DB_DISK_READ_S


class TestDiskStations:
    def test_db_hosts_have_disk_stations(self):
        system, harness = run_system(users=50, run=10.0)
        db_host = system.db_backends[0].host
        assert db_host.name in harness.disk_by_host
        app_host = system.app_servers[0].host
        assert app_host.name not in harness.disk_by_host

    def test_disk_sees_every_db_operation(self):
        system, harness = run_system(users=100, run=20.0)
        backend = harness.db_backends[0]
        # CPU and spindle process the same operations, sequentially.
        assert backend.disk.completed == backend.cpu.completed

    def test_writes_flush_on_every_replica_disk(self):
        system, harness = run_system(users=100, write_ratio=0.9, dbs=2,
                                     run=20.0)
        first, second = harness.db_backends
        assert first.disk.completed > 0
        # Writes broadcast: both spindles see comparable operation
        # counts even though reads are split.
        ratio = first.disk.completed / second.disk.completed
        assert 0.8 < ratio < 1.25

    def test_disk_never_the_bottleneck_at_calibrated_demands(self):
        system, harness = run_system(users=300, run=20.0)
        backend = harness.db_backends[0]
        _t, cpu_area = backend.cpu.area_reading()
        _t2, disk_area = backend.disk.area_reading()
        assert disk_area < cpu_area

    def test_slow_warp_disk_busier_than_rohan(self):
        def disk_utilization(platform):
            _system, harness = run_system(platform=platform, users=250,
                                          write_ratio=0.5, run=20.0)
            backend = harness.db_backends[0]
            t, area = backend.disk.area_reading()
            return area / t

        # Same workload: the 5400 RPM Warp spindle runs ~1.85x busier
        # than Rohan's 10000 RPM disk (Table 2).
        assert disk_utilization("warp") > \
            1.4 * disk_utilization("rohan")


class TestDiskMonitoring:
    def test_sar_disk_channel_measured_on_db_host(self):
        system, _harness = run_system(users=250, run=25.0)
        db_host = system.db_backends[0].host
        monitor = [m for m in system.monitors if m.host is db_host][0]
        series = parse_sysstat(db_host.fs.read(monitor.output_path))
        window = (14.0, 39.0)
        points = series.series("disk")
        in_window = [values for t, values in points
                     if window[0] <= t <= window[1]]
        tps = [v[0] for v in in_window]
        utils = [v[1] for v in in_window]
        # ~36 req/s hit the DB; each is one disk op.
        assert sum(tps) / len(tps) == pytest.approx(36, rel=0.25)
        # Utilization is real but modest (CPU is the bottleneck tier).
        assert 1.0 < sum(utils) / len(utils) < 40.0

    def test_app_host_disk_is_synthetic(self):
        system, _harness = run_system(users=100, run=15.0)
        app_host = system.app_servers[0].host
        monitor = [m for m in system.monitors if m.host is app_host][0]
        series = parse_sysstat(app_host.fs.read(monitor.output_path))
        # Two channels either way (tps, util).
        _t, values = series.series("disk")[0]
        assert len(values) == 2
