"""Fault-plane tests: determinism, retry, quarantine, resume.

The acceptance bar for the chaos plane is observational equivalence:
a campaign that suffered (and survived) injected transient faults must
store byte-identical observation tables — ``trials``, ``host_cpu``,
``state_metrics`` — to a fault-free sequential run.  Failures land in
their own ``failures`` table and fault spans in ``spans``, so the
record of the chaos never perturbs the science.
"""

import threading
import time
import warnings

import pytest

from repro import (
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    Tracer,
    resume_campaign,
    run_campaign,
    trace_report,
)
from repro.deploy import DeploymentEngine
from repro.errors import (
    AllocationError,
    ClusterError,
    FaultPlanError,
    SpecError,
    TrialFailed,
)
from repro.faults import EVERY_ATTEMPT, GAVE_UP, NO_RETRY, as_policy
from repro.results.database import ResultsDatabase
from repro.results.export import from_csv, to_csv, to_json
from repro.spec.topology import Topology
from repro.vcluster import VirtualCluster

CAMPAIGN_TBL = """
benchmark rubis; platform emulab;
experiment "chaos" {
    topology 1-1-1, 1-2-1;
    workload 100, 200;
    write_ratio 15%;
    trial { warmup 3s; run 15s; cooldown 3s; }
}
"""

SINGLE_TBL = """
benchmark rubis; platform emulab;
experiment "single" {
    topology 1-1-1;
    workload 100;
    write_ratio 15%;
    trial { warmup 3s; run 15s; cooldown 3s; }
}
"""

#: The observation tables that must never differ between a fault-free
#: run and a chaos run that recovered via retries.
OBSERVATION_TABLES = ("trials", "host_cpu", "state_metrics")

CHAOS_PLAN = FaultPlan([
    FaultSpec(kind="host-crash", target="node-*", rate=0.5),
    FaultSpec(kind="monitor-truncate", rate=0.4),
], seed=11)

#: Retries without quarantine: repeated blame against one host would
#: otherwise pull it from the pool and shift later trials onto
#: different host names (quarantine has its own tests below).
CHAOS_RETRY = RetryPolicy(max_attempts=3, quarantine_after=10)


def observation_dump(database):
    # Byte-identity means nothing if the file is internally broken:
    # every dump doubles as a referential-integrity audit (the replace
    # path once orphaned child rows of replaced trials).
    assert database.integrity_check() == []
    return {table: database.dump_rows(table)
            for table in OBSERVATION_TABLES}


@pytest.fixture(scope="module")
def baseline():
    """Fault-free sequential campaign: the byte-comparison reference."""
    report = run_campaign(CAMPAIGN_TBL)
    return observation_dump(report.database)


# ---------------------------------------------------------------------------
# The plan language


class TestFaultPlan:
    def test_same_seed_same_schedule(self):
        keys = [("chaos", "1-1-1", w, 0.15, s)
                for w in (100, 200, 300) for s in (0, 1)]
        one = FaultPlan([FaultSpec(kind="host-crash", rate=0.5)], seed=7)
        two = FaultPlan([FaultSpec(kind="host-crash", rate=0.5)], seed=7)
        assert one.schedule(keys, attempts=3) == two.schedule(keys,
                                                             attempts=3)

    def test_different_seed_different_schedule(self):
        keys = [("chaos", "1-1-1", w, 0.15, 0) for w in range(100, 1100,
                                                              100)]
        spec = FaultSpec(kind="host-crash", rate=0.5)
        one = FaultPlan([spec], seed=7)
        two = FaultPlan([spec], seed=8)
        assert one.schedule(keys) != two.schedule(keys)

    def test_json_round_trip(self):
        plan = FaultPlan([
            FaultSpec(kind="daemon-kill", target="mysqld", rate=0.25,
                      attempts=2, experiment="chaos", transient=False),
            FaultSpec(kind="alloc-exhausted"),
        ], seed=42)
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            FaultSpec(kind="meteor-strike")

    def test_rate_validated(self):
        with pytest.raises(FaultPlanError, match="rate"):
            FaultSpec(kind="host-crash", rate=1.5)

    def test_bad_json_rejected(self):
        with pytest.raises(FaultPlanError, match="not valid JSON"):
            FaultPlan.from_json("{nope")
        with pytest.raises(FaultPlanError, match="'faults' list"):
            FaultPlan.from_json("[]")
        with pytest.raises(FaultPlanError, match="unknown fault spec"):
            FaultPlan.from_json('{"faults": [{"kind": "host-crash", '
                                '"surprise": 1}]}')

    def test_fault_heals_after_attempt_budget(self):
        plan = FaultPlan([FaultSpec(kind="host-crash", attempts=1)])
        key = ("chaos", "1-1-1", 100, 0.15, 0)
        assert plan.draw(key, 0)
        assert not plan.draw(key, 1)

    def test_every_attempt_never_heals(self):
        plan = FaultPlan([FaultSpec(kind="host-crash",
                                    attempts=EVERY_ATTEMPT)])
        key = ("chaos", "1-1-1", 100, 0.15, 0)
        for attempt in range(5):
            assert plan.draw(key, attempt)

    def test_experiment_glob_scopes_faults(self):
        plan = FaultPlan([FaultSpec(kind="host-crash",
                                    experiment="chaos-*")])
        assert plan.draw(("chaos-a", "1-1-1", 100, 0.15, 0), 0)
        assert not plan.draw(("baseline", "1-1-1", 100, 0.15, 0), 0)


class TestRetryPolicy:
    def test_transient_classification(self):
        policy = RetryPolicy()
        assert policy.is_transient(ClusterError("node down"))
        assert not policy.is_transient(SpecError("bad TBL"))
        assert not policy.is_transient(ValueError("logic bug"))

    def test_trial_failed_judged_by_cause(self):
        policy = RetryPolicy()
        wrapped = TrialFailed("lost after window",
                              cause=ClusterError("node down"))
        assert policy.is_transient(wrapped)
        assert not policy.is_transient(TrialFailed("error budget"))

    def test_backoff_is_deterministic_geometry(self):
        policy = RetryPolicy(backoff_base_s=1.0, backoff_factor=2.0)
        assert [policy.backoff_s(n) for n in (1, 2, 3)] == [1.0, 2.0, 4.0]

    def test_as_policy_normalization(self):
        assert as_policy(None) is NO_RETRY
        assert as_policy(1) is NO_RETRY
        assert as_policy(4).max_attempts == 4
        policy = RetryPolicy(max_attempts=2)
        assert as_policy(policy) is policy

    def test_validation(self):
        with pytest.raises(Exception, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(Exception, match="quarantine_after"):
            RetryPolicy(quarantine_after=0)


# ---------------------------------------------------------------------------
# Observational equivalence under chaos


class TestChaosDeterminism:
    def test_recovered_campaign_matches_fault_free_run(self, baseline):
        report = run_campaign(CAMPAIGN_TBL, faults=CHAOS_PLAN, retry=CHAOS_RETRY)
        db = report.database
        assert report.trials == 4 and report.dnf == 0
        # The plan must actually have bitten, or this test proves nothing.
        assert db.failure_count() > 0
        assert report.retried > 0
        assert observation_dump(db) == baseline

    def test_parallel_chaos_matches_fault_free_run(self, baseline):
        report = run_campaign(CAMPAIGN_TBL, faults=CHAOS_PLAN, retry=CHAOS_RETRY,
                              jobs=3, backend="thread")
        db = report.database
        assert report.dnf == 0
        assert db.failure_count() > 0
        assert observation_dump(db) == baseline

    def test_failures_table_reconstructs_attempts(self):
        report = run_campaign(CAMPAIGN_TBL, faults=CHAOS_PLAN, retry=CHAOS_RETRY)
        db = report.database
        retried = [result for result in db.query() if result.retried]
        assert retried
        for result in retried:
            assert result.completed
            assert len(result.failures) == result.attempts - 1
            assert all(f.transient for f in result.failures)
            assert all(f.fault_kind for f in result.failures)


# ---------------------------------------------------------------------------
# Checkpoint / resume


class StopCampaign(Exception):
    pass


class TestResume:
    def test_interrupted_campaign_resumes_exactly_remaining(self,
                                                            baseline):
        database = ResultsDatabase()
        seen = []

        def interrupt(result):
            seen.append(result)
            if len(seen) == 2:
                raise StopCampaign

        with pytest.raises(StopCampaign):
            run_campaign(CAMPAIGN_TBL, database=database,
                         faults=CHAOS_PLAN, retry=CHAOS_RETRY, on_result=interrupt)
        assert database.count() == 2

        report = resume_campaign(database)
        assert report.skipped == 2
        assert report.trials == 2
        assert database.count() == 4
        assert len(set(database.trial_keys())) == 4
        assert observation_dump(database) == baseline

    def test_resume_of_complete_campaign_is_a_no_op(self):
        database = ResultsDatabase()
        run_campaign(CAMPAIGN_TBL, database=database, retry=3)
        report = resume_campaign(database)
        assert report.trials == 0
        assert report.skipped == 4
        assert database.count() == 4

    def test_resume_restores_fault_plan_and_policy(self):
        database = ResultsDatabase()
        run_campaign(CAMPAIGN_TBL, database=database, faults=CHAOS_PLAN,
                     retry=RetryPolicy(max_attempts=5))
        from repro.core.campaign import ObservationCampaign
        campaign = ObservationCampaign.from_database(database)
        assert campaign.fault_plan == CHAOS_PLAN
        assert campaign.retry_policy.max_attempts == 5

    def test_resume_needs_campaign_meta(self):
        from repro.core.campaign import ObservationCampaign
        with pytest.raises(Exception, match="campaign meta"):
            ObservationCampaign.from_database(ResultsDatabase())


# ---------------------------------------------------------------------------
# Quarantine


class TestQuarantine:
    def test_persistent_host_fault_quarantines_and_completes(self):
        plan = FaultPlan([FaultSpec(kind="host-crash", target="node-1",
                                    attempts=EVERY_ATTEMPT)], seed=3)
        tracer = Tracer()
        report = run_campaign(
            CAMPAIGN_TBL, faults=plan, tracer=tracer,
            retry=RetryPolicy(max_attempts=4, quarantine_after=2))
        db = report.database
        assert report.trials == 4 and report.dnf == 0
        assert "node-1" in report.quarantined
        quarantined = db.quarantined_hosts()
        assert "node-1" in quarantined
        assert "failed attempts" in quarantined["node-1"]
        names = {span.name for _info, spans in db.traced_trials()
                 for span in spans}
        assert "fault" in names and "quarantine" in names
        rendered = trace_report(db)
        assert "Injected faults" in rendered
        assert "quarantined node-1" in rendered

    def test_structural_hosts_cannot_be_quarantined(self):
        cluster = VirtualCluster("emulab", node_count=8)
        for name in ("control", "client"):
            with pytest.raises(ClusterError, match="structural"):
                cluster.quarantine(name)

    def test_quarantined_host_leaves_the_pool(self):
        cluster = VirtualCluster("emulab", node_count=14)
        assert cluster.quarantine("node-1", reason="test")
        assert not cluster.quarantine("node-1")          # idempotent
        allocation = cluster.allocate(Topology(1, 1, 1))
        held = {h.name for h in allocation.all_server_hosts()}
        assert "node-1" not in held
        cluster.release(allocation)
        assert cluster.is_quarantined("node-1")
        assert cluster.quarantined() == {"node-1": "test"}

    def test_release_restores_a_fresh_host_to_the_pool(self):
        cluster = VirtualCluster("emulab", node_count=14)
        cluster.host("node-1").fs.write("/tmp/scar", "leftover state")
        assert cluster.quarantine("node-1", reason="test")
        assert cluster.release_quarantine("node-1")
        assert not cluster.release_quarantine("node-1")  # idempotent
        assert not cluster.release_quarantine("node-9")  # never sentenced
        assert not cluster.is_quarantined("node-1")
        assert cluster.quarantined() == {}
        # The released host is re-allocatable and comes back clean —
        # a replacement machine, not the scarred one.
        allocation = cluster.allocate(Topology(1, 1, 1))
        held = {h.name for h in allocation.all_server_hosts()}
        assert "node-1" in held
        assert not cluster.host("node-1").fs.exists("/tmp/scar")


# ---------------------------------------------------------------------------
# Probation: quarantine sentences expire after good behaviour


class TestProbation:
    def test_policy_round_trip_and_validation(self):
        policy = RetryPolicy(max_attempts=3, quarantine_after=2,
                             probation_trials=4)
        assert policy.to_dict()["probation_trials"] == 4
        assert RetryPolicy.from_dict(policy.to_dict()) == policy
        with pytest.raises(Exception, match="probation_trials"):
            RetryPolicy(probation_trials=-1)

    def test_released_host_serves_again_and_can_be_resentenced(self):
        # A crash pinned to node-1 that never heals: the host is
        # quarantined, paroled after two clean trials elsewhere, bitten
        # again on its first trial back, and re-quarantined on a single
        # repeat offence (blame restarts one below the threshold).
        plan = FaultPlan([FaultSpec(kind="host-crash", target="node-1",
                                    rate=1.0, attempts=EVERY_ATTEMPT)],
                         seed=3)
        tracer = Tracer()
        report = run_campaign(
            CAMPAIGN_TBL, faults=plan, tracer=tracer,
            retry=RetryPolicy(max_attempts=4, quarantine_after=2,
                              probation_trials=2))
        db = report.database
        assert report.trials == 4 and report.dnf == 0
        names = [span.name for _info, spans in db.traced_trials()
                 for span in spans]
        assert names.count("probation-release") == 2
        assert names.count("quarantine") == 2
        resolutions = [
            (f.host, f.resolution)
            for result in db.query() for f in result.failures]
        assert resolutions.count(("node-1", "quarantined")) == 2

    def test_without_probation_the_sentence_is_permanent(self):
        plan = FaultPlan([FaultSpec(kind="host-crash", target="node-1",
                                    rate=1.0, attempts=EVERY_ATTEMPT)],
                         seed=3)
        tracer = Tracer()
        report = run_campaign(
            CAMPAIGN_TBL, faults=plan, tracer=tracer,
            retry=RetryPolicy(max_attempts=4, quarantine_after=2))
        db = report.database
        assert report.trials == 4 and report.dnf == 0
        names = [span.name for _info, spans in db.traced_trials()
                 for span in spans]
        assert names.count("quarantine") == 1
        assert "probation-release" not in names


# ---------------------------------------------------------------------------
# Enriched DNF records and export round-trip (satellite d)


class TestDNFRecords:
    def test_non_transient_fault_gives_up_with_enriched_record(self):
        plan = FaultPlan([FaultSpec(kind="archive-corrupt",
                                    transient=False)])
        report = run_campaign(SINGLE_TBL, faults=plan, retry=3)
        db = report.database
        assert report.trials == 1 and report.dnf == 1
        (result,) = db.query()
        assert not result.completed
        assert result.attempts == 1                  # never retried
        (failure,) = db.failures_for(1)
        assert failure.resolution == GAVE_UP
        assert failure.fault_kind == "archive-corrupt"
        assert failure.phase == "deploy"
        assert not failure.transient

    def test_partial_metrics_survive_into_dnf_row(self):
        plan = FaultPlan([FaultSpec(kind="monitor-truncate",
                                    attempts=EVERY_ATTEMPT)])
        report = run_campaign(SINGLE_TBL, faults=plan,
                              retry=RetryPolicy(max_attempts=2))
        db = report.database
        (result,) = db.query()
        assert not result.completed
        assert result.attempts == 2
        # The fault fires after the run window: the simulation's partial
        # observations survive into the DNF row instead of zeroes.
        assert result.metrics.completed > 0
        assert result.metrics.throughput > 0
        failures = db.failures_for(1)
        assert [f.resolution for f in failures] == ["retried", GAVE_UP]
        assert all(f.phase == "collect" for f in failures)
        assert failures[0].backoff_s > 0

    def test_failures_round_trip_through_export(self):
        plan = FaultPlan([FaultSpec(kind="monitor-truncate",
                                    attempts=EVERY_ATTEMPT)])
        report = run_campaign(SINGLE_TBL, faults=plan,
                              retry=RetryPolicy(max_attempts=2))
        results = report.database.query()

        import json
        (row,) = json.loads(to_json(results))
        assert row["attempts"] == 2
        exported = row["failures"]
        assert len(exported) == 2
        assert exported[0]["fault_kind"] == "monitor-truncate"
        assert exported[0]["phase"] == "collect"
        assert exported[-1]["resolution"] == GAVE_UP

        (parsed,) = from_csv(to_csv(results))
        assert parsed["attempts"] == 2


# ---------------------------------------------------------------------------
# Satellite regressions: idempotent teardown, blocking-wait release,
# deprecation warning attribution


class TestHostIdempotency:
    def test_kill_twice_is_a_no_op(self):
        cluster = VirtualCluster("emulab", node_count=8)
        host = cluster.host("node-1")
        host.fs.write("/opt/x/bin/thing", "#!/bin/sh\n")
        process = host.spawn(["/opt/x/bin/thing"], background=True)
        assert host.kill(process.pid) is process
        assert host.kill(process.pid) is process     # already dead: no-op
        assert host.kill(999, strict=False) is None
        with pytest.raises(ClusterError, match="no such process"):
            host.kill(999)

    def test_kill_by_name_twice_is_a_no_op(self):
        cluster = VirtualCluster("emulab", node_count=8)
        host = cluster.host("node-1")
        host.fs.write("/opt/x/bin/thing", "#!/bin/sh\n")
        host.spawn(["/opt/x/bin/thing"], background=True)
        assert len(host.kill_by_name("thing")) == 1
        assert host.kill_by_name("thing") == []

    def test_engine_teardown_twice_is_a_no_op(self):
        from repro.generator import HostPlan, Mulini
        from repro.spec.mof import load_resource_model, render_resource_mof
        from repro.spec.tbl import parse as parse_tbl

        cluster = VirtualCluster("emulab", node_count=14)
        spec = parse_tbl(SINGLE_TBL)
        experiment = spec.experiment("single")
        mulini = Mulini(load_resource_model(
            render_resource_mof("rubis", "emulab")))
        allocation = cluster.allocate(Topology(1, 1, 1))
        bundle = mulini.generate(
            experiment, Topology(1, 1, 1), 100, 0.15,
            host_plan=HostPlan.from_allocation(allocation))
        engine = DeploymentEngine(cluster=cluster)
        deployment = engine.deploy(bundle, allocation)
        engine.teardown(deployment)
        engine.teardown(deployment)                  # must not raise
        engine.cleanup_failed(bundle, allocation)
        engine.cleanup_failed(bundle, allocation)    # must not raise


class TestBlockingWaitRelease:
    def test_release_after_failed_trial_wakes_waiters(self):
        # 7 nodes -> 5 workers, 3 of the default type: one 1-1-1
        # allocation exhausts them and a second must block.
        cluster = VirtualCluster("emulab", node_count=7)
        first = cluster.allocate(Topology(1, 1, 1))
        got = []

        def waiter():
            got.append(cluster.allocate(Topology(1, 1, 1), wait=True,
                                        timeout=30))

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.05)
        assert not got                       # genuinely blocked
        # The failure path releases exactly like the success path.
        cluster.release(first)
        thread.join(timeout=30)
        assert not thread.is_alive() and len(got) == 1
        assert {h.name for h in got[0].all_server_hosts()}

    def test_waiting_for_the_impossible_raises_immediately(self):
        cluster = VirtualCluster("emulab", node_count=7)
        with pytest.raises(AllocationError, match="in total"):
            cluster.allocate(Topology(4, 4, 4), wait=True, timeout=30)

    def test_parallel_chaos_campaign_with_retries_completes(self):
        # End-to-end regression for the waiter-release path: a chaos
        # campaign at jobs>1 where failed attempts release allocations
        # must run to completion rather than deadlock.
        report = run_campaign(CAMPAIGN_TBL, faults=CHAOS_PLAN, retry=CHAOS_RETRY,
                              jobs=2, backend="thread")
        assert report.trials == 4 and report.dnf == 0


class TestDeprecationStacklevel:
    def test_warning_points_at_direct_caller(self):
        cluster = VirtualCluster("emulab", node_count=8)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            DeploymentEngine(cluster)
        (warning,) = caught
        assert issubclass(warning.category, DeprecationWarning)
        assert warning.filename == __file__

    def test_warning_points_through_wrappers(self):
        cluster = VirtualCluster("emulab", node_count=8)

        class WrappedEngine(DeploymentEngine):
            def __init__(self, cluster):
                super().__init__(cluster)        # deprecated positional

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            WrappedEngine(cluster)
        (warning,) = caught
        assert warning.filename == __file__
