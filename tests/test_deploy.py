"""End-to-end tests: generated bundles deploy onto the virtual cluster."""

import pytest

from repro.deploy import DeploymentEngine, extract_deployed_system
from repro.errors import DeployError, VerificationError
from repro.generator import HostPlan, Mulini
from repro.spec.mof import load_resource_model, render_resource_mof
from repro.spec.tbl import parse as parse_tbl
from repro.spec.topology import Topology
from repro.vcluster import VirtualCluster

RUBIS_TBL = """
benchmark rubis; platform emulab;
experiment "deploytest" {
    topology 1-2-2;
    workload 300;
    write_ratio 15%;
    trial { warmup 6s; run 30s; cooldown 6s; }
}
"""


@pytest.fixture
def cluster():
    return VirtualCluster("emulab", node_count=20)


@pytest.fixture
def experiment():
    return parse_tbl(RUBIS_TBL).experiment("deploytest")


@pytest.fixture
def mulini():
    return Mulini(load_resource_model(render_resource_mof("rubis", "emulab")))


def make_deployment(cluster, mulini, experiment, topology,
                    workload=300, write_ratio=0.15):
    allocation = cluster.allocate(topology)
    plan = HostPlan.from_allocation(allocation)
    bundle = mulini.generate(experiment, topology, workload, write_ratio,
                             host_plan=plan)
    engine = DeploymentEngine(cluster=cluster)
    deployment = engine.deploy(bundle, allocation, experiment=experiment,
                               topology=topology, workload=workload,
                               write_ratio=write_ratio)
    return engine, deployment


class TestDeployment:
    def test_full_deploy_1_2_2(self, cluster, mulini, experiment):
        _engine, deployment = make_deployment(
            cluster, mulini, experiment, Topology(1, 2, 2)
        )
        system = deployment.system
        assert system.topology() == Topology(1, 2, 2)
        assert len(system.app_servers) == 2
        assert len(system.db_backends) == 2
        assert system.controller is not None
        # Every server host plus the client carries a sar monitor.
        assert len(system.monitors) == 5 + 1

    def test_daemons_actually_running(self, cluster, mulini, experiment):
        _engine, deployment = make_deployment(
            cluster, mulini, experiment, Topology(1, 1, 1)
        )
        app_host = deployment.system.app_servers[0].host
        names = {p.name for p in app_host.live_processes()}
        assert "catalina.sh" in names
        assert "jonas" in names
        assert "sar" in names

    def test_config_files_deployed_to_vendor_paths(self, cluster, mulini,
                                                   experiment):
        _engine, deployment = make_deployment(
            cluster, mulini, experiment, Topology(1, 1, 1)
        )
        web_host = deployment.system.web_servers[0].host
        assert web_host.fs.is_file("/opt/apache/conf/workers2.properties")
        db_host = deployment.system.db_backends[0].host
        assert db_host.fs.is_file("/opt/mysql/my.cnf")

    def test_driver_parameters_roundtrip(self, cluster, mulini, experiment):
        _engine, deployment = make_deployment(
            cluster, mulini, experiment, Topology(1, 1, 1)
        )
        driver = deployment.system.driver
        assert driver.users == 300
        assert driver.write_ratio == pytest.approx(0.15)
        assert driver.run == pytest.approx(30.0)

    def test_app_server_efficiency_recovered(self, cluster, mulini,
                                             experiment):
        _engine, deployment = make_deployment(
            cluster, mulini, experiment, Topology(1, 1, 1)
        )
        assert deployment.system.app_servers[0].server_name == "jonas"
        assert deployment.system.app_servers[0].efficiency == 1.0

    def test_weblogic_deployment(self, cluster):
        spec = parse_tbl("""
        benchmark rubis; platform warp; app_server weblogic;
        experiment "wl" { topology 1-1-1; workload 100; }
        """)
        experiment = spec.experiment("wl")
        mulini = Mulini(load_resource_model(
            render_resource_mof("rubis", "emulab", app_server="weblogic")
        ))
        _engine, deployment = make_deployment(
            cluster, mulini, experiment, Topology(1, 1, 1),
            workload=100,
        )
        server = deployment.system.app_servers[0]
        assert server.server_name == "weblogic"
        assert server.efficiency == pytest.approx(1.0)

    def test_teardown_stops_everything(self, cluster, mulini, experiment):
        engine, deployment = make_deployment(
            cluster, mulini, experiment, Topology(1, 2, 1)
        )
        engine.teardown(deployment)
        for host in deployment.allocation.all_server_hosts():
            assert host.live_processes() == []

    def test_collect_after_monitor_output(self, cluster, mulini, experiment):
        engine, deployment = make_deployment(
            cluster, mulini, experiment, Topology(1, 1, 1)
        )
        # Simulate monitors/driver having produced output files.
        for monitor in deployment.system.monitors:
            monitor.host.fs.write(monitor.output_path, "sysstat data\n")
        client = deployment.system.client_host
        client.fs.write("/var/log/driver/requests.log", "req 1 0.05 OK\n")
        results_dir = engine.collect(deployment)
        control = deployment.allocation.control
        collected = list(control.fs.walk_files(results_dir))
        assert any(path.endswith("requests.log") for path in collected)
        assert sum(1 for path in collected
                   if path.endswith(".sysstat.dat")) == 4

    def test_verification_catches_wrong_workload(self, cluster, mulini,
                                                 experiment):
        topology = Topology(1, 1, 1)
        allocation = cluster.allocate(topology)
        plan = HostPlan.from_allocation(allocation)
        bundle = mulini.generate(experiment, topology, 300, 0.15,
                                 host_plan=plan)
        engine = DeploymentEngine(cluster=cluster)
        with pytest.raises(VerificationError, match="users"):
            engine.deploy(bundle, allocation, experiment=experiment,
                          topology=topology, workload=999, write_ratio=0.15)

    def test_verification_catches_killed_daemon(self, cluster, mulini,
                                                experiment):
        engine, deployment = make_deployment(
            cluster, mulini, experiment, Topology(1, 2, 1)
        )
        # Kill one app server behind the system's back, then re-extract.
        victim = deployment.system.app_servers[1].host
        victim.kill_by_name("jonas")
        victim.kill_by_name("catalina.sh")
        hosts = [deployment.allocation.client] + \
            deployment.allocation.all_server_hosts()
        from repro.deploy import verify_deployment
        system = extract_deployed_system(hosts)
        with pytest.raises(VerificationError, match="topology"):
            verify_deployment(system, experiment, Topology(1, 2, 1),
                              300, 0.15)

    def test_rubbos_two_tier_deployment(self, cluster):
        spec = parse_tbl("""
        benchmark rubbos; platform emulab;
        experiment "bb" { topology 0-1-1; workload 500; }
        """)
        experiment = spec.experiment("bb")
        mulini = Mulini(load_resource_model(
            render_resource_mof("rubbos", "emulab")
        ))
        _engine, deployment = make_deployment(
            cluster, mulini, experiment, Topology(0, 1, 1), workload=500
        )
        system = deployment.system
        assert system.web_servers == []
        assert system.app_servers[0].server_name == "tomcat"
        # Driver targets the servlet container directly.
        assert system.driver.target_port == 8009

    def test_extract_requires_driver(self, cluster):
        with pytest.raises(DeployError, match="driver"):
            extract_deployed_system(list(cluster.hosts.values()))

    def test_deployment_scale_out_1_8_2(self, cluster, mulini, experiment):
        _engine, deployment = make_deployment(
            cluster, mulini, experiment, Topology(1, 8, 2)
        )
        system = deployment.system
        assert len(system.app_servers) == 8
        workers = system.web_servers[0].workers
        assert len(workers) == 8
        assert len(system.controller.backend_specs) == 2
