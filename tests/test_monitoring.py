"""Tests for sysstat emitters, collectors and application metrics."""

import pytest

from repro.errors import MonitoringError
from repro.monitoring import (
    TrialMetrics,
    attach_monitors,
    collect_sysstat_files,
    parse_request_log,
    parse_sysstat,
    render_request_log,
    summarize_log,
    summarize_records,
)
from repro.sim import NTierSimulation
from repro.sim.ntier import RequestRecord
from repro.vcluster import VirtualHost
from repro.spec import get_platform
from tests.conftest import make_driver, make_system


def _record(issued, finished, status="ok", state="Home", user=0):
    return RequestRecord(user=user, state=state, issued_at=issued,
                         finished_at=finished, status=status,
                         is_write=False)


class TestSummarizeRecords:
    def test_basic_summary(self):
        records = [
            _record(1.0, 1.1), _record(2.0, 2.3), _record(3.0, 3.2),
            _record(4.0, 4.5, status="timeout"),
        ]
        metrics = summarize_records(records, (0.0, 10.0))
        assert metrics.completed == 3
        assert metrics.timeouts == 1
        assert metrics.errors == 1
        assert metrics.throughput == pytest.approx(0.3)
        assert metrics.mean_response_s == pytest.approx((0.1 + 0.3 + 0.2) / 3)
        assert metrics.error_ratio == pytest.approx(0.25)

    def test_window_filters_by_completion_time(self):
        records = [_record(0.5, 1.5), _record(5.0, 12.0)]
        metrics = summarize_records(records, (1.0, 10.0))
        assert metrics.completed == 1

    def test_in_flight_requests_ignored(self):
        records = [_record(1.0, float("nan"))]
        metrics = summarize_records(records, (0.0, 10.0))
        assert metrics.total == 0

    def test_percentiles_ordered(self):
        records = [_record(i, i + 0.01 * (i + 1)) for i in range(100)]
        metrics = summarize_records(records, (0.0, 200.0))
        assert metrics.p50_response_s <= metrics.p90_response_s
        assert metrics.p90_response_s <= metrics.p99_response_s

    def test_empty_window_rejected(self):
        with pytest.raises(MonitoringError):
            summarize_records([], (5.0, 5.0))

    def test_slo_check(self):
        from repro.spec.tbl import ServiceLevelObjective
        metrics = TrialMetrics(
            completed=90, errors=10, timeouts=10, rejections=0,
            duration_s=10, throughput=9.0, mean_response_s=0.5,
            p50_response_s=0.4, p90_response_s=0.9, p99_response_s=1.5,
        )
        assert metrics.satisfies(ServiceLevelObjective(2.0, 0.2))
        assert not metrics.satisfies(ServiceLevelObjective(2.0, 0.05))
        assert not metrics.satisfies(ServiceLevelObjective(0.1, 0.2))


class TestRequestLog:
    def test_roundtrip(self):
        records = [_record(1.0, 1.25, state="ViewItem"),
                   _record(2.0, 2.5, status="timeout", state="StoreBid")]
        text = render_request_log(records)
        parsed = parse_request_log(text)
        assert len(parsed) == 2
        assert parsed[0].state == "ViewItem"
        assert parsed[0].response_s == pytest.approx(0.25)
        assert parsed[1].status == "timeout"

    def test_summarize_log_matches_records(self):
        records = [_record(float(i), i + 0.2) for i in range(1, 50)]
        text = render_request_log(records)
        from_log = summarize_log(text, (0.0, 100.0))
        direct = summarize_records(records, (0.0, 100.0))
        assert from_log.completed == direct.completed
        assert from_log.mean_response_s == pytest.approx(
            direct.mean_response_s, abs=1e-4)

    def test_bad_log_rejected(self):
        with pytest.raises(MonitoringError):
            parse_request_log("not a log")

    def test_malformed_line_rejected(self):
        with pytest.raises(MonitoringError):
            parse_request_log("#requests hdr\n1.0 only three\n")


class TestSysstat:
    def test_emitters_write_parseable_files(self):
        driver = make_driver(users=80, warmup=5.0, run=20.0, cooldown=5.0)
        system = make_system(driver=driver)
        harness = NTierSimulation(system)
        emitters = attach_monitors(harness)
        harness.run()
        for emitter in emitters:
            emitter.flush()
        monitor = system.monitors[0]
        series = parse_sysstat(monitor.host.fs.read(monitor.output_path))
        assert series.host == monitor.host.name
        assert series.interval == 1.0
        # ~30 seconds of samples at 1 Hz.
        assert 25 <= len(series.series("cpu")) <= 31

    def test_app_cpu_reflects_load(self):
        driver = make_driver(users=300, warmup=5.0, run=30.0, cooldown=5.0)
        system = make_system(driver=driver)
        harness = NTierSimulation(system)
        emitters = attach_monitors(harness)
        harness.run()
        for emitter in emitters:
            emitter.flush()
        app_host = system.app_servers[0].host
        app_monitor = [m for m in system.monitors
                       if m.host is app_host][0]
        series = parse_sysstat(app_host.fs.read(app_monitor.output_path))
        # 300 users on one JOnAS server: saturated in steady state.
        assert series.mean("cpu", window=(10.0, 35.0)) > 85.0

    def test_client_host_reports_baseline(self):
        driver = make_driver(users=50, warmup=2.0, run=10.0, cooldown=2.0)
        system = make_system(driver=driver)
        harness = NTierSimulation(system)
        emitters = attach_monitors(harness)
        harness.run()
        for emitter in emitters:
            emitter.flush()
        client_monitor = [m for m in system.monitors
                          if m.host is system.client_host][0]
        series = parse_sysstat(
            system.client_host.fs.read(client_monitor.output_path))
        assert 0 < series.mean("cpu") < 10

    def test_memory_grows_with_load(self):
        light_driver = make_driver(users=30, warmup=2, run=15, cooldown=2)
        heavy_driver = make_driver(users=300, warmup=2, run=15, cooldown=2)

        def app_memory(driver):
            system = make_system(driver=driver)
            harness = NTierSimulation(system)
            emitters = attach_monitors(harness)
            harness.run()
            for emitter in emitters:
                emitter.flush()
            host = system.app_servers[0].host
            monitor = [m for m in system.monitors if m.host is host][0]
            series = parse_sysstat(host.fs.read(monitor.output_path))
            return series.peak("memory")

        assert app_memory(heavy_driver) > app_memory(light_driver)

    def test_parse_rejects_garbage(self):
        with pytest.raises(MonitoringError):
            parse_sysstat("no header\n1 cpu 2\n")

    def test_parse_rejects_missing_header_fields(self):
        with pytest.raises(MonitoringError):
            parse_sysstat("#sysstat 6.0.2 host=n1\n")

    def test_collect_sysstat_files(self):
        host = VirtualHost("control", get_platform("warp").node_type())
        host.fs.write(
            "/results/x/node-1.sysstat.dat",
            "#sysstat 6.0.2 host=node-1 interval=1 metrics=cpu\n"
            "1 cpu 50\n2 cpu 70\n",
        )
        host.fs.write("/results/x/requests.log", "#requests hdr\n")
        collected = collect_sysstat_files(host, "/results/x")
        assert set(collected) == {"node-1"}
        assert collected["node-1"].mean("cpu") == pytest.approx(60.0)


class TestSeriesErrorPaths:
    def _series(self):
        return parse_sysstat(
            "#sysstat 6.0.2 host=n1 interval=1 metrics=cpu,memory\n"
            "1 cpu 50\n2 cpu 70\n1 memory 10\n"
        )

    def test_unknown_metric_raises_monitoring_error_not_keyerror(self):
        series = self._series()
        with pytest.raises(MonitoringError) as excinfo:
            series.series("disk_io")
        message = str(excinfo.value)
        assert "disk_io" in message
        # The error names the metrics that *are* known — declared in
        # the header even if never sampled.
        assert "cpu" in message and "memory" in message
        assert not isinstance(excinfo.value, KeyError)

    def test_values_unknown_metric_raises(self):
        with pytest.raises(MonitoringError):
            self._series().values("nope")

    def test_empty_window_raises_instead_of_silent_zero(self):
        series = self._series()
        with pytest.raises(MonitoringError) as excinfo:
            series.values("cpu", window=(50.0, 60.0))
        message = str(excinfo.value)
        assert "selects no" in message
        assert "50" in message and "60" in message

    def test_mean_propagates_empty_window_error(self):
        with pytest.raises(MonitoringError):
            self._series().mean("cpu", window=(100.0, 200.0))

    def test_known_metrics_union_of_declared_and_sampled(self):
        series = parse_sysstat(
            "#sysstat 6.0.2 host=n1 interval=1 metrics=cpu\n"
            "1 cpu 50\n1 network 3\n"
        )
        assert series.known_metrics() == ["cpu", "network"]

    def test_populated_window_still_works(self):
        series = self._series()
        assert series.mean("cpu", window=(0.0, 10.0)) == pytest.approx(60.0)
