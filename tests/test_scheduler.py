"""Tests for scheduler-driven parallel campaign execution.

The hard requirement under test: a ``jobs=N`` run must produce the
same observations, in the same order, as a ``jobs=1`` run — and the
shared substrate (cluster allocator, results database) must survive
concurrent use without corruption.
"""

import dataclasses
import threading
import time

import pytest

from repro.core import ObservationCampaign
from repro.errors import AllocationError, ExperimentError, ResultsError
from repro.experiments import build_experiment
from repro.experiments.figures import make_runner
from repro.experiments.scheduler import TrialScheduler, enumerate_tasks
from repro.results import ResultsDatabase
from repro.spec.topology import Topology
from repro.vcluster import VirtualCluster
from tests.test_results import make_result


def _experiment(name="sched", topologies=(Topology(1, 1, 1),),
                workloads=(100,), write_ratios=(0.15,), repetitions=1,
                seed=42):
    experiment, _tbl = build_experiment(
        name=name, benchmark="rubis", platform="emulab",
        topologies=topologies, workloads=workloads,
        write_ratios=write_ratios, repetitions=repetitions, seed=seed,
        scale=0.05, min_warmup=3.0,
    )
    return experiment


def _fingerprint(results):
    """Everything that identifies a trial's observation, in order."""
    return [
        (r.experiment_name, r.topology_label, r.workload, r.write_ratio,
         r.seed, r.status, r.metrics.completed, r.metrics.errors,
         r.metrics.mean_response_s, r.metrics.throughput,
         tuple(sorted(r.host_cpu.items())),
         tuple(sorted(r.tier_of_host.items())))
        for r in results
    ]


class TestTaskEnumeration:
    def test_canonical_order_points_outer_repetitions_inner(self):
        experiment = _experiment(topologies=(Topology(1, 1, 1),
                                             Topology(1, 2, 1)),
                                 workloads=(100, 200), repetitions=2)
        tasks = enumerate_tasks(experiment)
        assert len(tasks) == 8
        assert [t.index for t in tasks] == list(range(8))
        # points() iterates topologies outer, workloads inner; each
        # point repeats under seed, seed+1 before the next point.
        assert tasks[0].key() == ("sched", "1-1-1", 100, 0.15, 42, "des", "")
        assert tasks[1].key() == ("sched", "1-1-1", 100, 0.15, 43, "des", "")
        assert tasks[2].key() == ("sched", "1-1-1", 200, 0.15, 42, "des", "")
        assert tasks[4].key() == ("sched", "1-2-1", 100, 0.15, 42, "des", "")
        assert len({t.key() for t in tasks}) == 8

    def test_start_index_offsets_across_experiments(self):
        experiment = _experiment(workloads=(100, 200))
        tasks = enumerate_tasks(experiment, start_index=5)
        assert [t.index for t in tasks] == [5, 6]

    def test_tasks_are_immutable(self):
        task = enumerate_tasks(_experiment())[0]
        with pytest.raises(dataclasses.FrozenInstanceError):
            task.workload = 999

    def test_seed_derives_from_repetition(self):
        experiment = _experiment(repetitions=3, seed=7)
        tasks = enumerate_tasks(experiment)
        assert [t.seed for t in tasks] == [7, 8, 9]


class TestTrialScheduler:
    def test_rejects_bad_configuration(self):
        with pytest.raises(ExperimentError):
            TrialScheduler(lambda: None, jobs=0)
        with pytest.raises(ExperimentError):
            TrialScheduler(lambda: None, jobs=2, backend="carrier-pigeon")

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_parallel_matches_sequential(self, backend):
        experiment = _experiment(topologies=(Topology(1, 1, 1),
                                             Topology(1, 2, 1)),
                                 workloads=(100, 250), repetitions=2)
        runner = make_runner("emulab", "rubis", node_count=10)
        sequential = runner.run_experiment(experiment)
        parallel = runner.run_experiment(experiment, jobs=3,
                                         backend=backend)
        assert _fingerprint(parallel) == _fingerprint(sequential)

    def test_on_result_delivered_in_task_order(self):
        experiment = _experiment(workloads=(250, 100, 180))
        runner = make_runner("emulab", "rubis", node_count=10)
        seen = []
        runner.run_experiment(experiment, jobs=3, backend="thread",
                              on_result=lambda r: seen.append(r.workload))
        assert seen == [250, 100, 180]

    def test_worker_failure_propagates(self):
        experiment = _experiment(topologies=(Topology(1, 8, 1),))
        # Workers clone the runner's 6-node cluster, far too small for
        # a 1-8-1 topology: the scheduler must surface the failure.
        runner = make_runner("emulab", "rubis", node_count=6)
        with pytest.raises(AllocationError):
            runner.run_experiment(experiment, jobs=2, backend="thread")


class TestCampaignParallelEquivalence:
    TBL = """
    benchmark rubis; platform emulab;
    experiment "alpha" {
        topology 1-1-1, 1-2-1;
        workload 100, 250;
        write_ratio 15%;
        trial { warmup 3s; run 15s; cooldown 3s; }
    }
    experiment "beta" {
        topology 1-1-1;
        workload 150;
        write_ratio 0%, 30%;
        trial { warmup 3s; run 15s; cooldown 3s; }
    }
    """

    @staticmethod
    def _dump(database):
        """Every stored observation, ordered and stripped of row ids."""
        rows = []
        for result in database.query():
            rows.append(_fingerprint([result])[0]
                        + (tuple(sorted(result.per_state.items())),))
        return sorted(rows)

    def test_parallel_database_equals_sequential(self):
        sequential = ObservationCampaign(self.TBL, node_count=10)
        report_seq = sequential.run()
        parallel = ObservationCampaign(self.TBL, node_count=10)
        report_par = parallel.run(jobs=4, backend="thread")
        assert report_par.trials == report_seq.trials == 6
        assert report_par.completed == report_seq.completed
        assert report_par.dnf == report_seq.dnf
        assert report_par.by_experiment == {"alpha": 4, "beta": 2}
        assert self._dump(parallel.database) == \
            self._dump(sequential.database)

    def test_progress_callbacks_name_the_producing_experiment(self):
        campaign = ObservationCampaign(self.TBL, node_count=10)
        names = []
        lines = []
        campaign.run(jobs=2, backend="thread",
                     on_result=lambda r: names.append(r.experiment_name),
                     on_progress=lines.append)
        assert names == ["alpha"] * 4 + ["beta"] * 2
        assert len(lines) == 6
        assert all(line.startswith("[alpha]") or line.startswith("[beta]")
                   for line in lines)
        assert "trial 6/6" in lines[-1]


class TestClusterConcurrency:
    def test_no_double_allocation_under_contention(self):
        cluster = VirtualCluster("emulab", node_count=12)  # 10 free
        in_use = set()
        guard = threading.Lock()
        errors = []

        def hammer():
            try:
                for _ in range(8):
                    allocation = cluster.allocate(Topology(1, 1, 1),
                                                  wait=True, timeout=30)
                    names = [h.name
                             for h in allocation.all_server_hosts()]
                    with guard:
                        clashes = in_use.intersection(names)
                        assert not clashes, \
                            f"hosts allocated twice: {clashes}"
                        in_use.update(names)
                    time.sleep(0.001)
                    with guard:
                        in_use.difference_update(names)
                    cluster.release(allocation)
            except BaseException as exc:       # surfaced on the main thread
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert cluster.free_count() == 10

    def test_wait_blocks_until_release(self):
        cluster = VirtualCluster("warp", node_count=5)    # 3 free
        first = cluster.allocate(Topology(1, 1, 1))       # takes all 3
        got = []

        def blocked():
            allocation = cluster.allocate(Topology(1, 1, 1), wait=True,
                                          timeout=30)
            got.append(allocation)
            cluster.release(allocation)

        thread = threading.Thread(target=blocked)
        thread.start()
        time.sleep(0.1)
        assert not got          # still waiting: every node is held
        cluster.release(first)
        thread.join(timeout=30)
        assert len(got) == 1
        assert cluster.free_count() == 3

    def test_wait_rejects_impossible_request_immediately(self):
        cluster = VirtualCluster("warp", node_count=5)    # 3 free
        holder = cluster.allocate(Topology(1, 1, 1))
        # 1-4-1 needs 6 nodes but the whole pool has 3: waiting could
        # never help, so this must raise instead of hanging.
        with pytest.raises(AllocationError):
            cluster.allocate(Topology(1, 4, 1), wait=True)
        cluster.release(holder)

    def test_wait_times_out(self):
        cluster = VirtualCluster("warp", node_count=5)
        holder = cluster.allocate(Topology(1, 1, 1))
        start = time.monotonic()
        with pytest.raises(AllocationError):
            cluster.allocate(Topology(1, 1, 1), wait=True, timeout=0.05)
        assert time.monotonic() - start < 5
        cluster.release(holder)

    def test_allocation_is_deterministic_lowest_node_first(self):
        cluster = VirtualCluster("emulab", node_count=10)
        first = cluster.allocate(Topology(1, 1, 1))
        names = sorted(h.name for h in first.all_server_hosts())
        cluster.release(first)
        second = cluster.allocate(Topology(1, 1, 1))
        assert sorted(h.name for h in second.all_server_hosts()) == names

    def test_clone_builds_identical_fresh_pool(self):
        cluster = VirtualCluster("emulab", node_count=10)
        held = cluster.allocate(Topology(1, 1, 1))
        clone = cluster.clone()
        assert clone.free_count() == 8          # clone starts pristine
        assert sorted(clone.hosts) == sorted(cluster.hosts)
        assert clone.hosts["node-1"] is not cluster.hosts["node-1"]
        cluster.release(held)


class TestDatabaseConcurrency:
    def test_concurrent_inserts_with_unique_key_replacement(self, tmp_path):
        database = ResultsDatabase(str(tmp_path / "obs.sqlite"))
        errors = []

        def writer(offset):
            try:
                for index in range(10):
                    # Distinct workloads plus one contended key that
                    # every thread rewrites via UNIQUE-key replacement.
                    database.insert(
                        make_result(workload=1000 + offset * 10 + index),
                        replace=True)
                    database.insert(make_result(workload=77), replace=True)
            except BaseException as exc:
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(n,))
                   for n in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert database.count() == 40 + 1
        contended = database.query(workload=77)
        assert len(contended) == 1
        # Replacement never duplicates the per-host child rows.
        assert len(contended[0].host_cpu) == 3
        database.close()

    def test_duplicate_without_replace_still_rejected(self):
        with ResultsDatabase() as database:
            database.insert(make_result())
            with pytest.raises(ResultsError):
                database.insert(make_result())

    def test_close_is_idempotent_and_final(self):
        database = ResultsDatabase()
        database.insert(make_result())
        database.close()
        database.close()
        with pytest.raises(ResultsError):
            database.count()
