"""Shape tests for the reproduced figures and tables.

These assert the paper's qualitative claims — who wins, by roughly what
factor, where crossovers fall — on reduced sweeps; the benchmark
harness regenerates the full figures.
"""

import pytest

from repro.experiments import figures
from repro.experiments.figures import (
    figure1,
    figure2,
    figure4,
    figure7,
    figure8,
    run_db_scaleout,
    run_rubis_jonas_baseline,
    table3,
    table4,
    table5,
    table6,
    table7,
)
from repro.results import analysis

SCALE = 0.05


@pytest.fixture(scope="module")
def baseline_run():
    """One shared Figure 1/2 sweep (reduced: 3 workloads x 4 ratios)."""
    return run_rubis_jonas_baseline(scale=SCALE, workload_step=100,
                                    ratio_step=0.3)


@pytest.fixture(scope="module")
def db_scaleout_run():
    """One shared Figure 7/8 sweep (reduced workload grid)."""
    return run_db_scaleout(scale=SCALE, workload_step=900)


class TestFigure1and2:
    def test_figure1_bottleneck_region(self, baseline_run):
        results, tbl = baseline_run
        fig = figure1(results=results, tbl=tbl)
        surface = fig.data
        # Monotone growth toward the low-write, high-user corner.
        assert surface[(250, 0.0)] > 4 * surface[(50, 0.0)]
        # The paper's inversion: high write ratio keeps RT short.
        assert surface[(250, 0.9)] < surface[(250, 0.0)] / 4
        assert "Figure 1" in fig.rendered

    def test_figure1_tbl_recorded(self, baseline_run):
        results, tbl = baseline_run
        fig = figure1(results=results, tbl=tbl)
        assert "benchmark rubis" in fig.tbl_source

    def test_figure2_correlated_cpu_peaks(self, baseline_run):
        results, tbl = baseline_run
        fig = figure2(results=results, tbl=tbl)
        surface = fig.data
        # App CPU saturates exactly where Figure 1's RT peaks (IV.A).
        assert surface[(250, 0.0)] > 85.0
        assert surface[(50, 0.9)] < 35.0

    def test_figures_1_and_2_share_observations(self, baseline_run):
        results, tbl = baseline_run
        rt = figure1(results=results, tbl=tbl).data
        cpu = figure2(results=results, tbl=tbl).data
        assert set(rt) == set(cpu)


class TestFigure3:
    def test_weblogic_supports_twice_the_users(self):
        fig = figures.figure3(scale=SCALE, workload_step=250,
                              ratio_step=0.45)
        surface = fig.data
        # JOnAS/Emulab saturates ~250 users; Weblogic/Warp is still
        # comfortable at 350 and saturates past 400 (about twice).
        assert surface[(350, 0.0)] < 1000.0
        assert surface[(600, 0.0)] > 2 * surface[(350, 0.0)]


class TestFigure4:
    def test_readonly_saturates_much_earlier(self):
        fig = figure4(scale=SCALE, workload_step=1500)
        readonly = dict(fig.data["100% read"])
        mixed = dict(fig.data["85% read / 15% write"])
        # At 3500 users the read-only mix is far past its ~2000-user
        # knee while the 85/15 mix is near its ~3200-user knee.
        assert readonly[3500] > 2 * mixed[3500]
        # Both start comparable at 500 users.
        assert readonly[500] < 300.0
        assert mixed[500] < 300.0


class TestScaleOutShapes:
    @pytest.fixture(scope="class")
    def small_scaleout(self):
        return figures._scaleout(
            "test-scaleout", range(1, 4), range(1, 3),
            (300, 600, 900), SCALE, None, 42,
        )

    def test_app_servers_buy_250_users_each(self, small_scaleout):
        results, _tbl = small_scaleout
        # 1-2-1 saturated at 600; 1-3-1 (+1 app) handles 600 gracefully.
        two = dict(analysis.response_time_series(results, "1-2-1"))
        three = dict(analysis.response_time_series(results, "1-3-1"))
        assert three[600] < two[600] / 3

    def test_adding_db_makes_little_difference(self, small_scaleout):
        # Below the 1700-user DB knee, a second DB is nearly worthless
        # while a second app server is dramatic (Figure 5's overlap).
        results, _tbl = small_scaleout
        base = dict(analysis.response_time_series(results, "1-1-1"))
        more_db = dict(analysis.response_time_series(results, "1-1-2"))
        more_app = dict(analysis.response_time_series(results, "1-2-1"))
        gain_db = base[300] - more_db[300]
        gain_app = base[300] - more_app[300]
        assert gain_app > 4 * max(gain_db, 1.0)


class TestFigure7and8:
    def test_figure7_db_jump_at_1700(self, db_scaleout_run):
        results, tbl = db_scaleout_run
        fig = figure7(results=results, tbl=tbl)
        one_vs_two = dict(fig.data["1DB-2DB (8 app)"])
        # Flat on the left, sudden jump once 1 DB saturates (~1700).
        assert abs(one_vs_two[1100]) < 200.0
        assert one_vs_two[2000] > 500.0

    def test_figure7_third_db_adds_little_at_8_app(self, db_scaleout_run):
        results, tbl = db_scaleout_run
        fig = figure7(results=results, tbl=tbl)
        two_vs_three = dict(fig.data["2DB-3DB (8 app)"])
        assert abs(two_vs_three[1100]) < 200.0
        assert abs(two_vs_three[2000]) < 400.0

    def test_figure8_db_cpu_saturation_points(self, db_scaleout_run):
        results, tbl = db_scaleout_run
        fig = figure8(results=results, tbl=tbl)
        one_db = dict(fig.data["1-8-1"])
        twelve_two = dict(fig.data["1-12-2"])
        # 1-8-1's single DB is saturated by 2000 users.
        assert one_db[2000] > 85.0
        # 1-12-2's DB pair stays below saturation at 2000.
        assert twelve_two[2000] < 80.0


class TestTable6:
    def test_app_improvement_dwarfs_db_improvement(self):
        fig = table6(scale=SCALE)
        table = fig.data
        # Paper: +1 app server => 84.3% improvement; +1 DB => 13%.
        assert table["app"][2] > 60.0
        assert table["db"][2] < 30.0
        assert table["app"][2] > 3 * max(table["db"][2], 1.0)

    def test_three_app_servers_saturate_the_gain(self):
        fig = table6(scale=SCALE)
        table = fig.data
        # 3-4 app servers "match well" 500 users: gains flatten.
        assert table["app"][3] >= table["app"][2]
        assert table["app"][4] - table["app"][3] < 10.0


class TestTable7:
    @pytest.fixture(scope="class")
    def fig(self):
        return table7(scale=SCALE, workload_step=350)

    def test_low_load_throughput_uniform_across_configs(self, fig):
        # "The throughput at low workloads is the same across the
        # multiple servers" (V.B).
        row = {t: fig.data[t][300] for t in fig.data}
        values = [v for v in row.values() if v is not None]
        assert len(values) == len(row)
        spread = max(values) - min(values)
        assert spread < 0.15 * max(values)

    def test_small_config_has_missing_squares(self, fig):
        # 1-2-1 cannot complete the high-load trials (capacity ~490).
        assert fig.data["1-2-1"][1000] is None

    def test_large_config_completes_high_load(self, fig):
        assert fig.data["1-4-3"][1000] is not None

    def test_rendering_marks_dnf(self, fig):
        assert "-" in fig.rendered


class TestGenerationTables:
    def test_table3_reaches_paper_magnitude(self):
        fig = table3(paper_scale=False)
        rows = {row["set"]: row for row in fig.data}
        scaleout = rows["Scale-out RUBiS on JOnAS"]
        # "The number of script lines ... reach hundreds of thousands"
        # (III.C) — even the reduced grid lands far above 100 KLOC.
        assert scaleout["script_lines"] > 100_000
        assert scaleout["machine_count"] > 1000
        assert scaleout["collected_mb"] > 100
        baseline = rows["Baseline RUBiS on JOnAS"]
        assert baseline["script_lines"] < scaleout["script_lines"]

    def test_table4_script_family(self):
        fig = table4()
        entries = dict((name, lines) for name, lines, _c in
                       fig.data["entries"])
        assert entries["run.sh"] > 30
        # Paper: install 54, configure 48, ignition 16, stop 12 lines.
        assert 5 <= entries["scripts/TOMCAT1_ignition.sh"] <= 25
        assert entries["scripts/TOMCAT1_install.sh"] > \
            entries["scripts/TOMCAT1_stop.sh"]

    def test_table5_config_files(self):
        fig = table5()
        entries = dict((name, lines) for name, lines, _c in
                       fig.data["entries"])
        # Paper: workers2 22 lines, C-JDBC XML 16, monitor props 6.
        assert 10 <= entries["config/APACHE1_workers2.properties"] <= 35
        assert 10 <= entries["config/CJDBC1_mysqldb-raidb1-elba.xml"] <= 25
        assert entries["config/JONAS1_monitor-local.properties"] <= 8

    def test_store_figure_in_database(self):
        from repro.results import ResultsDatabase
        results, tbl = run_rubis_jonas_baseline(
            scale=0.02, workload_step=200, ratio_step=0.9)
        fig = figure1(results=results, tbl=tbl)
        with ResultsDatabase() as db:
            fig.store(db)
            assert db.count() == len(fig.results)
