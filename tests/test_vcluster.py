"""Tests for the virtual cluster substrate."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AllocationError, ClusterError
from repro.spec import get_package, get_platform
from repro.spec.topology import Topology
from repro.vcluster import (
    VirtualCluster,
    VirtualFileSystem,
    VirtualHost,
    VirtualNetwork,
    archive_package_name,
    build_archive,
    normalize,
    parse_archive,
)


class TestFilesystem:
    def setup_method(self):
        self.fs = VirtualFileSystem()

    def test_write_read_roundtrip(self):
        self.fs.write("/etc/motd", "hello\n")
        assert self.fs.read("/etc/motd") == "hello\n"

    def test_write_creates_parents(self):
        self.fs.write("/a/b/c/file", "x")
        assert self.fs.is_dir("/a/b/c")

    def test_append(self):
        self.fs.write("/log", "a\n")
        self.fs.write("/log", "b\n", append=True)
        assert self.fs.read("/log") == "a\nb\n"

    def test_read_missing_raises(self):
        with pytest.raises(ClusterError):
            self.fs.read("/nope")

    def test_mkdir_then_listdir(self):
        self.fs.mkdir("/opt/app")
        self.fs.write("/opt/app/x", "1")
        self.fs.write("/opt/app/y", "2")
        assert self.fs.listdir("/opt/app") == ["x", "y"]

    def test_listdir_shows_subdirs_once(self):
        self.fs.write("/opt/a/deep/file", "1")
        assert self.fs.listdir("/opt") == ["a"]

    def test_remove_file(self):
        self.fs.write("/f", "1")
        self.fs.remove("/f")
        assert not self.fs.exists("/f")

    def test_remove_dir_requires_recursive(self):
        self.fs.mkdir("/d")
        with pytest.raises(ClusterError):
            self.fs.remove("/d")
        self.fs.remove("/d", recursive=True)
        assert not self.fs.exists("/d")

    def test_recursive_remove_counts_files(self):
        self.fs.write("/d/a", "1")
        self.fs.write("/d/sub/b", "2")
        assert self.fs.remove("/d", recursive=True) == 2

    def test_copy_file_into_dir(self):
        self.fs.write("/src/file", "data")
        self.fs.mkdir("/dst")
        self.fs.copy("/src/file", "/dst")
        assert self.fs.read("/dst/file") == "data"

    def test_copy_tree(self):
        self.fs.write("/tree/a", "1")
        self.fs.write("/tree/sub/b", "2")
        assert self.fs.copy("/tree", "/clone") == 2
        assert self.fs.read("/clone/sub/b") == "2"

    def test_line_count(self):
        self.fs.write("/f", "a\nb\nc\n")
        assert self.fs.line_count("/f") == 3
        self.fs.write("/g", "a\nb")
        assert self.fs.line_count("/g") == 2
        self.fs.write("/h", "")
        assert self.fs.line_count("/h") == 0

    def test_total_bytes(self):
        self.fs.write("/a", "xx")
        self.fs.write("/b/c", "yyy")
        assert self.fs.total_bytes() == 5

    def test_mtime_monotonic(self):
        self.fs.write("/a", "1")
        first = self.fs.mtime("/a")
        self.fs.write("/a", "2")
        assert self.fs.mtime("/a") > first

    def test_relative_path_normalization(self):
        assert normalize("b", cwd="/a") == "/a/b"
        assert normalize("/a/../c") == "/c"

    def test_rejects_binary(self):
        with pytest.raises(ClusterError):
            self.fs.write("/f", b"bytes")


@given(st.lists(
    st.tuples(
        st.text(alphabet="abcd", min_size=1, max_size=3),
        st.text(alphabet="xyz\n", max_size=20),
    ),
    min_size=1, max_size=20,
))
def test_fs_total_bytes_matches_sum(entries):
    fs = VirtualFileSystem()
    expected = {}
    for name, content in entries:
        path = f"/data/{name}"
        fs.write(path, content)
        expected[path] = content
    assert fs.total_bytes("/data") == sum(len(c) for c in expected.values())
    for path, content in expected.items():
        assert fs.read(path) == content


class TestArchives:
    def test_roundtrip(self):
        package = get_package("tomcat")
        text = build_archive(package)
        members = parse_archive(text)
        assert "VERSION" in members
        assert package.daemon in members
        assert "conf/server.xml" in members

    def test_header_name(self):
        text = build_archive(get_package("mysql"))
        assert archive_package_name(text) == "mysql"

    def test_bad_magic_rejected(self):
        with pytest.raises(ClusterError):
            parse_archive("not a tarball")

    def test_member_content_preserved(self):
        package = get_package("apache")
        members = parse_archive(build_archive(package))
        assert "apache 2.0.54" in members["VERSION"]


class TestHost:
    def _host(self):
        return VirtualHost("node-1", get_platform("emulab").node_type())

    def test_spawn_and_kill(self):
        host = self._host()
        host.fs.write("/opt/x/bin/daemon", "#!/bin/sh\n")
        process = host.spawn(["/opt/x/bin/daemon", "--port", "80"],
                             background=True)
        assert process.alive
        assert host.daemon_running("/opt/x/bin/daemon")
        host.kill(process.pid)
        assert not host.daemon_running("/opt/x/bin/daemon")

    def test_spawn_missing_executable(self):
        with pytest.raises(ClusterError):
            self._host().spawn(["/missing/daemon"])

    def test_spawn_bare_command_allowed(self):
        process = self._host().spawn(["hostname"])
        assert process.name == "hostname"

    def test_arg_value(self):
        host = self._host()
        process = host.spawn(["tool", "--port", "80", "--mode=fast"])
        assert process.arg_value("--port") == "80"
        assert process.arg_value("--mode") == "fast"
        assert process.arg_value("--none", "d") == "d"

    def test_kill_by_name(self):
        host = self._host()
        host.spawn(["sar", "-u"])
        host.spawn(["sar", "-r"])
        assert len(host.kill_by_name("sar")) == 2
        assert host.processes_named("sar") == []

    def test_install_recording(self):
        host = self._host()
        host.record_install("tomcat", "/opt/tomcat")
        assert host.is_installed("tomcat")
        assert not host.is_installed("jonas")


class TestNetwork:
    def test_transfer_file(self):
        net = VirtualNetwork()
        a = VirtualHost("a", get_platform("warp").node_type())
        b = VirtualHost("b", get_platform("warp").node_type())
        net.attach(a)
        net.attach(b)
        a.fs.write("/src/data", "payload")
        net.transfer(a, "/src/data", b, "/dst/data")
        assert b.fs.read("/dst/data") == "payload"
        assert net.bytes_transferred == len("payload")

    def test_transfer_into_directory(self):
        net = VirtualNetwork()
        a = VirtualHost("a", get_platform("warp").node_type())
        b = VirtualHost("b", get_platform("warp").node_type())
        net.attach(a)
        net.attach(b)
        a.fs.write("/pkg/file.tar.gz", "x")
        b.fs.mkdir("/drop")
        net.transfer(a, "/pkg/file.tar.gz", b, "/drop")
        assert b.fs.read("/drop/file.tar.gz") == "x"

    def test_transfer_tree(self):
        net = VirtualNetwork()
        a = VirtualHost("a", get_platform("warp").node_type())
        b = VirtualHost("b", get_platform("warp").node_type())
        net.attach(a)
        net.attach(b)
        a.fs.write("/tree/x", "1")
        a.fs.write("/tree/sub/y", "22")
        assert net.transfer(a, "/tree", b, "/copy") == 2
        assert b.fs.read("/copy/sub/y") == "22"

    def test_unknown_host(self):
        net = VirtualNetwork()
        with pytest.raises(ClusterError):
            net.host("ghost")

    def test_latency_scales_with_payload(self):
        net = VirtualNetwork(link_gbps=1.0)
        assert net.message_latency(10_000_000) > net.message_latency(100)


class TestCluster:
    def test_construction_stock(self):
        cluster = VirtualCluster("emulab", node_count=10)
        assert cluster.control.fs.is_file("/packages/mysql-max-4.0.27.tar.gz")
        assert cluster.free_count() == 8

    def test_allocate_topology(self):
        cluster = VirtualCluster("emulab", node_count=12)
        allocation = cluster.allocate(Topology(1, 2, 1))
        assert len(allocation.tier_hosts["app"]) == 2
        assert allocation.machine_count() == 6
        assert cluster.free_count() == 10 - 4

    def test_allocation_exhaustion_is_atomic(self):
        cluster = VirtualCluster("warp", node_count=5)  # 3 free nodes
        with pytest.raises(AllocationError):
            cluster.allocate(Topology(1, 3, 1))
        assert cluster.free_count() == 3

    def test_allocate_specific_node_type(self):
        cluster = VirtualCluster("emulab", node_count=20)
        allocation = cluster.allocate(
            Topology(1, 1, 1), tier_node_types={"db": "emulab-low"}
        )
        assert allocation.host_for("db", 1).node_type.name == "emulab-low"
        assert allocation.host_for("app", 1).node_type.name == "emulab-high"

    def test_release_recycles_and_wipes(self):
        cluster = VirtualCluster("emulab", node_count=8)
        allocation = cluster.allocate(Topology(1, 1, 1))
        host = allocation.host_for("app", 1)
        host.fs.write("/opt/tomcat/VERSION", "tomcat")
        cluster.release(allocation)
        assert cluster.free_count() == 6
        recycled = cluster.host(host.name)
        assert not recycled.fs.exists("/opt/tomcat/VERSION")

    def test_emulab_has_low_end_nodes(self):
        cluster = VirtualCluster("emulab", node_count=20)
        low = sum(1 for h in cluster.hosts.values()
                  if h.node_type.name == "emulab-low")
        assert low >= 2

    def test_host_for_out_of_range(self):
        cluster = VirtualCluster("emulab", node_count=10)
        allocation = cluster.allocate(Topology(1, 1, 1))
        with pytest.raises(ClusterError):
            allocation.host_for("app", 2)

    def test_minimum_cluster_size(self):
        with pytest.raises(ClusterError):
            VirtualCluster("warp", node_count=2)
