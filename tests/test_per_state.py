"""Tests for per-interaction response-time breakdowns."""

import pytest

from repro.monitoring import (
    render_request_log,
    summarize_by_state,
    summarize_log_by_state,
)
from repro.sim.ntier import RequestRecord


def _record(issued, finished, state, status="ok"):
    return RequestRecord(user=0, state=state, issued_at=issued,
                         finished_at=finished, status=status,
                         is_write=False)


class TestSummarizeByState:
    def test_groups_and_means(self):
        records = [
            _record(1.0, 1.1, "ViewItem"),
            _record(2.0, 2.3, "ViewItem"),
            _record(3.0, 3.05, "Home"),
            _record(4.0, 4.5, "StoreBid", status="timeout"),
        ]
        by_state = summarize_by_state(records, (0.0, 10.0))
        assert by_state["ViewItem"]["count"] == 2
        assert by_state["ViewItem"]["mean_response_s"] == \
            pytest.approx(0.2)
        assert by_state["Home"]["count"] == 1
        assert by_state["StoreBid"]["errors"] == 1
        assert by_state["StoreBid"]["count"] == 0

    def test_window_applies(self):
        records = [_record(1.0, 1.2, "Home"), _record(50.0, 50.2, "Home")]
        by_state = summarize_by_state(records, (0.0, 10.0))
        assert by_state["Home"]["count"] == 1

    def test_log_roundtrip(self):
        records = [_record(1.0, 1.25, "ViewItem"),
                   _record(2.0, 2.1, "Browse")]
        text = render_request_log(records)
        by_state = summarize_log_by_state(text, (0.0, 10.0))
        assert set(by_state) == {"ViewItem", "Browse"}
        assert by_state["ViewItem"]["mean_response_s"] == \
            pytest.approx(0.25, abs=1e-4)


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def trial(self):
        from repro.experiments import build_experiment
        from repro.experiments.figures import make_runner
        from repro.spec.topology import Topology
        runner = make_runner("emulab", "rubis", node_count=10)
        experiment, _tbl = build_experiment(
            name="states", benchmark="rubis", platform="emulab",
            topologies=[Topology(1, 1, 1)], workloads=(150,),
            scale=0.08,
        )
        return runner.run_point(experiment, Topology(1, 1, 1), 150, 0.15)

    def test_trial_carries_per_state(self, trial):
        assert len(trial.per_state) > 10       # many of the 26 states hit
        total = sum(stats["count"] for stats in trial.per_state.values())
        assert total == trial.metrics.completed

    def test_heavy_reads_slower_than_writes(self, trial):
        # ViewItem renders item+bids+seller (app-heavy); StoreBid is a
        # forwarded transaction.
        view = trial.per_state["ViewItem"]["mean_response_s"]
        store = trial.per_state["StoreBid"]["mean_response_s"]
        assert view > store

    def test_heaviest_interactions_ranked(self, trial):
        heaviest = trial.heaviest_interactions(limit=3)
        assert len(heaviest) == 3
        means = [stats["mean_response_s"] for _state, stats in heaviest]
        assert means == sorted(means, reverse=True)

    def test_database_roundtrip_preserves_per_state(self, trial):
        from repro.results import ResultsDatabase
        with ResultsDatabase() as db:
            db.insert(trial)
            loaded = db.query()[0]
            assert loaded.per_state.keys() == trial.per_state.keys()
            for state in trial.per_state:
                assert loaded.per_state[state]["count"] == \
                    trial.per_state[state]["count"]
                assert loaded.per_state[state]["mean_response_s"] == \
                    pytest.approx(
                        trial.per_state[state]["mean_response_s"])

    def test_render_state_table(self, trial):
        from repro.results.report import render_state_table
        text = render_state_table("By interaction", trial.per_state,
                                  limit=5)
        assert "interaction" in text
        assert len(text.splitlines()) == 2 + 5

    def test_cli_report_by_interaction(self, trial, tmp_path, capsys):
        from repro.cli import main
        from repro.results import ResultsDatabase
        db_path = tmp_path / "obs.sqlite"
        with ResultsDatabase(str(db_path)) as db:
            db.insert(trial)
        status = main(["report", "--db", str(db_path),
                       "--by-interaction"])
        assert status == 0
        out = capsys.readouterr().out
        assert "by interaction" in out
        assert "ViewItem" in out or "AboutMe" in out
