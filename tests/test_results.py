"""Tests for the results database, analysis functions and reports."""

import pytest

from repro.errors import ResultsError
from repro.experiments.trial import COMPLETED, DNF, TrialResult
from repro.monitoring.metrics import TrialMetrics
from repro.results import ResultsDatabase, analysis, report


def make_result(topology="1-1-1", workload=100, write_ratio=0.15,
                mean_rt=0.05, throughput=None, status=COMPLETED,
                experiment="exp", app_cpu=50.0, db_cpu=20.0, seed=42,
                script_lines=1000, collected=100000):
    throughput = workload / 7.0 if throughput is None else throughput
    metrics = TrialMetrics(
        completed=int(throughput * 30), errors=0, timeouts=0, rejections=0,
        duration_s=30.0, throughput=throughput, mean_response_s=mean_rt,
        p50_response_s=mean_rt, p90_response_s=mean_rt * 2,
        p99_response_s=mean_rt * 3,
    )
    return TrialResult(
        experiment_name=experiment, benchmark="rubis", platform="emulab",
        topology_label=topology, workload=workload, write_ratio=write_ratio,
        seed=seed, status=status, metrics=metrics,
        host_cpu={"node-1": app_cpu, "node-2": db_cpu, "client": 2.0},
        tier_of_host={"node-1": "app", "node-2": "db", "client": "client"},
        collected_bytes=collected, script_lines=script_lines,
        config_lines=60, generated_files=40, machine_count=5,
    )


class TestDatabase:
    def test_insert_and_query_roundtrip(self):
        with ResultsDatabase() as db:
            db.insert(make_result(workload=100))
            db.insert(make_result(workload=200))
            rows = db.query(topology="1-1-1")
            assert len(rows) == 2
            assert rows[0].workload == 100
            assert rows[0].metrics.throughput == pytest.approx(100 / 7.0)
            assert rows[0].host_cpu["node-1"] == 50.0
            assert rows[0].tier_of_host["node-2"] == "db"

    def test_duplicate_rejected(self):
        with ResultsDatabase() as db:
            db.insert(make_result())
            with pytest.raises(ResultsError):
                db.insert(make_result())

    def test_replace_allowed(self):
        with ResultsDatabase() as db:
            db.insert(make_result(mean_rt=0.05))
            db.insert(make_result(mean_rt=0.09), replace=True)
            rows = db.query()
            assert len(rows) == 1
            assert rows[0].metrics.mean_response_s == pytest.approx(0.09)

    def test_replace_does_not_orphan_children(self):
        # Regression: the old replace path deleted child rows keyed on
        # the *new* trial's id — a no-op that left the replaced trial's
        # host_cpu/state_metrics/spans/failures rows orphaned whenever
        # foreign-key enforcement was off, which is SQLite's default
        # posture for any other reader of the file.
        with ResultsDatabase() as db:
            db._db.execute("PRAGMA foreign_keys = OFF")
            db.insert(make_result())
            db.insert(make_result(mean_rt=0.09), replace=True)
            assert db.integrity_check() == []
            (trial_id,) = [row[0] for row in db.dump_rows("trials")]
            host_rows = db.dump_rows("host_cpu")
            assert len(host_rows) == 3          # one trial's worth
            assert {row[0] for row in host_rows} == {trial_id}
            assert {row[0] for row in db.dump_rows("state_metrics")} \
                <= {trial_id}

    def test_integrity_check_reports_orphans(self):
        with ResultsDatabase() as db:
            db._db.execute("PRAGMA foreign_keys = OFF")
            db._db.execute(
                "INSERT INTO host_cpu (trial_id, host, tier, cpu_percent) "
                "VALUES (999, 'node-1', 'app', 50.0)")
            problems = db.integrity_check()
            assert problems == ["host_cpu: 1 row(s) orphaned from trials"]

    def test_insert_many_matches_serial_inserts(self):
        serial = ResultsDatabase()
        for workload in (100, 200, 300):
            serial.insert(make_result(workload=workload))
        batched = ResultsDatabase()
        ids = batched.insert_many(
            [make_result(workload=w) for w in (100, 200, 300)])
        assert len(ids) == 3
        for table in ("trials", "host_cpu", "state_metrics"):
            assert batched.dump_rows(table) == serial.dump_rows(table)

    def test_insert_many_rolls_back_whole_batch(self):
        with ResultsDatabase() as db:
            db.insert(make_result(workload=200))
            with pytest.raises(ResultsError):
                db.insert_many([make_result(workload=100),
                                make_result(workload=200)])   # duplicate
            # Nothing from the failed batch may remain — not even the
            # workload=100 trial that inserted cleanly before the
            # duplicate aborted the transaction.
            assert db.count() == 1
            assert len(db.query(workload=100)) == 0
            assert db.integrity_check() == []

    def test_filters(self):
        with ResultsDatabase() as db:
            db.insert(make_result(topology="1-1-1", workload=100))
            db.insert(make_result(topology="1-2-1", workload=100))
            db.insert(make_result(topology="1-2-1", workload=200,
                                  status=DNF))
            assert len(db.query(topology="1-2-1")) == 2
            assert len(db.query(status=DNF)) == 1
            assert len(db.query(workload=100)) == 2
            assert db.count() == 3

    def test_write_ratio_filter_tolerant(self):
        with ResultsDatabase() as db:
            db.insert(make_result(write_ratio=0.30000000001))
            assert len(db.query(write_ratio=0.3)) == 1

    def test_aggregates(self):
        with ResultsDatabase() as db:
            db.insert(make_result(workload=100, collected=1000))
            db.insert(make_result(workload=200, collected=2000))
            assert db.total_collected_bytes() == 3000
            assert db.experiments() == ["exp"]
            assert db.topologies() == ["1-1-1"]


class TestAnalysis:
    def _scaleout_results(self):
        results = []
        # 1-1-1 saturates at ~245, 1-2-1 at ~490.
        for workload in (100, 300, 500):
            rt1 = 0.04 if workload <= 245 else (workload / 35.0 - 7.0)
            rt2 = 0.04 if workload <= 490 else (workload / 70.0 - 7.0)
            results.append(make_result("1-1-1", workload, mean_rt=rt1))
            results.append(make_result("1-2-1", workload, mean_rt=rt2))
        return results

    def test_response_time_series_sorted(self):
        series = analysis.response_time_series(self._scaleout_results(),
                                               "1-2-1")
        assert [w for w, _rt in series] == [100, 300, 500]

    def test_response_surface(self):
        results = [make_result(workload=w, write_ratio=r, mean_rt=0.01 * w)
                   for w in (50, 100) for r in (0.0, 0.5)]
        surface = analysis.response_surface(results, "1-1-1")
        assert surface[(100, 0.5)] == pytest.approx(1000.0)
        assert len(surface) == 4

    def test_surface_app_cpu(self):
        results = [make_result(app_cpu=77.0)]
        surface = analysis.response_surface(results, "1-1-1",
                                            value="app_cpu")
        assert surface[(100, 0.15)] == pytest.approx(77.0)

    def test_response_time_difference(self):
        diffs = analysis.response_time_difference(
            self._scaleout_results(), "1-1-1", "1-2-1")
        as_dict = dict(diffs)
        assert as_dict[100] == pytest.approx(0.0, abs=1e-6)
        assert as_dict[500] > 0     # 1-1-1 much slower at 500 users

    def test_difference_requires_shared_workloads(self):
        with pytest.raises(ResultsError):
            analysis.response_time_difference(
                [make_result("1-1-1", 100)], "1-1-1", "1-2-1")

    def test_improvement_table(self):
        results = [
            make_result("1-1-1", 500, mean_rt=4.0),
            make_result("1-2-1", 500, mean_rt=0.4),
            make_result("1-1-2", 500, mean_rt=3.5),
        ]
        table = analysis.improvement_table(
            results, "1-1-1", 500, 0.15, app_range=[2], db_range=[2])
        assert table["app"][2] == pytest.approx(90.0)
        assert table["db"][2] == pytest.approx(12.5)

    def test_improvement_requires_base(self):
        with pytest.raises(ResultsError):
            analysis.improvement_table([], "1-1-1", 500, 0.15, [2], [2])

    def test_throughput_table_marks_dnf(self):
        results = [
            make_result("1-2-1", 300, throughput=42.0),
            make_result("1-2-1", 800, throughput=10.0, status=DNF),
        ]
        table = analysis.throughput_table(results, ["1-2-1"], [300, 800])
        assert table["1-2-1"][300] == pytest.approx(42.0)
        assert table["1-2-1"][800] is None

    def test_saturation_workload(self):
        # RT(1-1-1): 0.04s @100, 1.57s @300, 7.28s @500 against a 2s SLO.
        results = self._scaleout_results()
        assert analysis.saturation_workload(results, "1-1-1", 2.0) == 500
        assert analysis.saturation_workload(results, "1-2-1", 2.0) is None

    def test_users_supported(self):
        results = self._scaleout_results()
        assert analysis.users_supported(results, "1-2-1", 2.0, 0.1) == 500
        assert analysis.users_supported(results, "1-1-1", 2.0, 0.1) == 300

    def test_db_cpu_series(self):
        results = [make_result(workload=100, db_cpu=30.0),
                   make_result(workload=200, db_cpu=60.0)]
        series = analysis.db_cpu_series(results, "1-1-1")
        assert series == [(100, 30.0), (200, 60.0)]

    def test_management_scale(self):
        rows = analysis.management_scale({
            "set-a": [make_result(script_lines=5000, collected=2_000_000)],
        })
        assert rows[0]["script_lines"] == 5000
        assert rows[0]["collected_mb"] == pytest.approx(2.0)


class TestReport:
    def test_render_surface_grid(self):
        surface = {(50, 0.0): 40.0, (50, 0.1): 38.0,
                   (100, 0.0): 55.0, (100, 0.1): 50.0}
        text = report.render_surface("Fig", surface)
        assert "0%" in text and "10%" in text
        assert "50" in text and "100" in text

    def test_render_multi_series_missing_points(self):
        text = report.render_multi_series(
            "T", {"a": [(1, 2.0)], "b": [(2, 3.0)]})
        assert "-" in text

    def test_render_throughput_table_dnf(self):
        text = report.render_throughput_table(
            "T7", {"1-2-1": {300: 42.0, 800: None}})
        assert "42.0" in text
        assert "-" in text

    def test_render_improvement_table(self):
        text = report.render_improvement_table(
            "T6", {"app": {2: 84.3}, "db": {2: 13.0}})
        assert "84.3" in text and "13.0" in text

    def test_render_management_scale(self):
        rows = [{"set": "s", "experiments": 10, "script_lines": 120000,
                 "config_lines": 900, "generated_files": 500,
                 "machine_count": 60, "collected_mb": 696.0}]
        text = report.render_management_scale("T3", rows)
        assert "120.0" in text and "696.0" in text
