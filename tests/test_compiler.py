"""Differential tests: the compiled engine against the tree-walk oracle.

The shellvm compiler is only allowed to be faster, never different.
Every test here runs the same script through both engines — fresh,
identically-built networks each time — and requires the observable
surface to match exactly: exit status, captured output, the audit log,
accumulated sleep time, and every file on every host.  The corpus
covers each construct the compiler specializes; the hypothesis fuzz
walks the grammar more broadly than hand-written cases would.

The regression classes pin the interpreter bugs fixed alongside the
compiler (errexit scoping, CommandError diagnostics under redirect) so
neither engine can reintroduce them.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError, ShellError
from repro.shellvm import ShellInterpreter
from repro.shellvm.interpreter import engine_mode
from repro.spec import get_platform
from repro.vcluster import VirtualHost, VirtualNetwork

HOSTS = ("control", "node-1", "node-2")


def fresh_network():
    network = VirtualNetwork()
    for name in HOSTS:
        network.attach(VirtualHost(name, get_platform("warp").node_type()))
    return network


def fs_state(network):
    """Every file on every host: ``{(host, path): content}``."""
    state = {}
    for name in HOSTS:
        host = network.host(name)
        for path in host.fs.walk_files():
            state[(name, path)] = host.fs.read(path)
    return state


def run_engine(engine, text, monkeypatch, *, setup=None):
    """Run *text* on a fresh network under *engine*.

    Returns ``(status, output, log, slept, files)`` — or the raised
    ``ShellError`` in the status slot with the rest ``None``, so both
    engines can be compared even when the script aborts.
    """
    monkeypatch.setenv("REPRO_SHELLVM", engine)
    network = fresh_network()
    if setup is not None:
        setup(network)
    interp = ShellInterpreter(network)
    assert interp.engine == engine_mode() == engine
    try:
        status, output = interp.run_text_on(network.host("control"), text)
    except ReproError as error:
        return (type(error), str(error)), None, list(interp.log), \
            interp.slept_seconds, fs_state(network)
    return status, output, list(interp.log), interp.slept_seconds, \
        fs_state(network)


def assert_engines_agree(text, monkeypatch, *, setup=None):
    compiled = run_engine("compiled", text, monkeypatch, setup=setup)
    interp = run_engine("interp", text, monkeypatch, setup=setup)
    assert compiled == interp, (
        f"engines diverge on:\n{text}\n"
        f"compiled={compiled!r}\ninterp={interp!r}"
    )
    return interp


CORPUS = [
    # Expansion and assignment
    'echo hello world',
    'X=5\necho "$X plus ${X}"',
    'X=a b\necho "$X"',                       # assignment word-splitting
    'echo $UNSET_VARIABLE end',
    "echo 'single $X quotes'",
    # Control flow
    'if test -d /tmp; then echo yes; else echo no; fi',
    'if test 3 -gt 5; then echo big; else echo small; fi',
    'for f in a b c; do echo item $f; done',
    'X=start\nfor f in 1 2; do X="$X-$f"; done\necho $X',
    'true && echo then',
    'false && echo skipped\necho after',
    'false || echo fallback',
    'true || echo skipped\necho after',
    'false && echo a || echo b',
    # Exit status plumbing
    'false\necho status-ignored-without-errexit',
    'exit 3\necho unreachable',
    'nosuchcommand-xyz\necho continues',
    # Filesystem builtins and redirects
    'mkdir -p /srv/app/conf\ntest -d /srv/app/conf && echo made',
    'echo content > /tmp/f.txt\ncat /tmp/f.txt',
    'echo one > /tmp/f.txt\necho two >> /tmp/f.txt\ncat /tmp/f.txt',
    'echo data > /tmp/a\ncp /tmp/a /tmp/b\ncat /tmp/b',
    'echo gone > /tmp/x\nrm /tmp/x\ntest -f /tmp/x || echo removed',
    'hostname',
    'cd /tmp\npwd',
    'sleep 2\nsleep 0.5\necho slept',
    # Remote operations
    'ssh node-1 "echo remote"',
    'ssh node-1 "mkdir -p /opt/app"\nssh node-1 "test -d /opt/app" '
    '&& echo ok',
    'echo payload > /tmp/pkg\nscp /tmp/pkg node-2:/tmp/pkg\n'
    'ssh node-2 "cat /tmp/pkg"',
    'ssh no-such-host "echo nope"\necho continues',
    # errexit interplay
    'set -e\necho before\ntrue\necho after',
    'set -e\nfalse || echo spared\necho alive',
    'set -e\nif false; then echo no; else echo cond-spared; fi',
]


@pytest.mark.parametrize("text", CORPUS)
def test_corpus_engines_agree(text, monkeypatch):
    assert_engines_agree(text, monkeypatch)


def test_subscript_invocation_agrees(monkeypatch):
    def setup(network):
        network.host("control").fs.write(
            "/opt/child.sh", 'echo child $1\nCHILD=x\nexit 7\n')

    status, output, log, _, _ = assert_engines_agree(
        '/opt/child.sh arg1\necho parent CHILD=$CHILD',
        monkeypatch, setup=setup)
    assert status == 0
    assert "child arg1" in output
    assert "parent CHILD=\n" in output       # child vars do not leak
    assert ("control", "/opt/child.sh arg1", 7) in log  # child status audited


def test_errexit_abort_agrees(monkeypatch):
    compiled = run_engine(
        "compiled", 'set -e\necho first\nfalse\necho unreachable',
        monkeypatch)
    interp = run_engine(
        "interp", 'set -e\necho first\nfalse\necho unreachable',
        monkeypatch)
    assert compiled == interp
    error_key, log = compiled[0], compiled[2]
    assert error_key[0] is ShellError        # both engines abort
    assert [entry.command for entry in log] == ["set -e", "echo first",
                                                "false"]


# -- grammar fuzz -------------------------------------------------------

_WORDS = st.sampled_from(["a", "bb", "x1", "conf", "0", "-n"])
_VARS = st.sampled_from(["X", "Y", "PATHY"])


def _simple(draw):
    kind = draw(st.sampled_from(
        ["echo", "assign", "mkdir", "write", "test", "status", "expand"]))
    if kind == "echo":
        return "echo " + " ".join(draw(st.lists(_WORDS, min_size=0,
                                                max_size=3)))
    if kind == "assign":
        return f"{draw(_VARS)}={draw(_WORDS)}"
    if kind == "mkdir":
        return f"mkdir -p /tmp/{draw(_WORDS)}"
    if kind == "write":
        return f"echo {draw(_WORDS)} > /tmp/{draw(_WORDS)}.txt"
    if kind == "test":
        return f"test -f /tmp/{draw(_WORDS)}.txt"
    if kind == "status":
        return draw(st.sampled_from(["true", "false", ":"]))
    return f'echo "${{{draw(_VARS)}}}"'


@st.composite
def shell_scripts(draw):
    lines = []
    for _ in range(draw(st.integers(min_value=1, max_value=6))):
        shape = draw(st.sampled_from(["plain", "andor", "if", "for"]))
        if shape == "plain":
            lines.append(_simple(draw))
        elif shape == "andor":
            op = draw(st.sampled_from(["&&", "||"]))
            lines.append(f"{_simple(draw)} {op} {_simple(draw)}")
        elif shape == "if":
            cond = draw(st.sampled_from(["true", "false",
                                         "test -d /tmp"]))
            lines.append(f"if {cond}; then {_simple(draw)}; "
                         f"else {_simple(draw)}; fi")
        else:
            items = " ".join(draw(st.lists(_WORDS, min_size=1,
                                           max_size=3)))
            lines.append(f"for I in {items}; do {_simple(draw)}; done")
    if draw(st.booleans()):
        lines.insert(0, "set -e")
    return "\n".join(lines)


@settings(max_examples=120, deadline=None)
@given(shell_scripts())
def test_fuzz_engines_agree(text):
    # No monkeypatch inside hypothesis: set the env var by hand around
    # each engine run (fresh networks make the runs independent).
    import os

    results = {}
    previous = os.environ.get("REPRO_SHELLVM")
    try:
        for engine in ("compiled", "interp"):
            os.environ["REPRO_SHELLVM"] = engine
            network = fresh_network()
            interp = ShellInterpreter(network)
            try:
                status, output = interp.run_text_on(
                    network.host("control"), text)
                head = (status, output)
            except ReproError as error:
                head = (type(error), str(error))
            results[engine] = (head, list(interp.log),
                               interp.slept_seconds, fs_state(network))
    finally:
        if previous is None:
            os.environ.pop("REPRO_SHELLVM", None)
        else:
            os.environ["REPRO_SHELLVM"] = previous
    assert results["compiled"] == results["interp"], (
        f"engines diverge on:\n{text}"
    )


# -- regression: errexit scoping ----------------------------------------


class TestErrexitRegression:
    """``set -e`` must abort loop/branch bodies, not only top level."""

    @pytest.mark.parametrize("engine", ["compiled", "interp"])
    def test_errexit_aborts_inside_for_body(self, engine, monkeypatch):
        status, _, log, _, _ = run_engine(
            engine, 'set -e\nfor f in 1 2 3; do false; echo $f; done',
            monkeypatch)
        assert status[0] is ShellError
        commands = [entry.command for entry in log]
        assert commands == ["set -e", "false"]   # loop never reaches echo

    @pytest.mark.parametrize("engine", ["compiled", "interp"])
    def test_errexit_aborts_inside_if_body(self, engine, monkeypatch):
        status, _, log, _, _ = run_engine(
            engine, 'set -e\nif true; then false; echo no; fi',
            monkeypatch)
        assert status[0] is ShellError
        assert [entry.command for entry in log] == ["set -e", "true",
                                                    "false"]

    @pytest.mark.parametrize("engine", ["compiled", "interp"])
    def test_errexit_spares_condition_positions(self, engine,
                                                monkeypatch):
        status, output, _, _, _ = run_engine(
            engine,
            'set -e\n'
            'if false; then echo then; else echo else; fi\n'
            'false || echo or-arm\n'
            'echo survived',
            monkeypatch)
        assert status == 0
        assert output == "else\nor-arm\nsurvived\n"

    @pytest.mark.parametrize("engine", ["compiled", "interp"])
    def test_errexit_trips_on_failed_and_list(self, engine, monkeypatch):
        # A && list whose *final* status is non-zero fails the line as
        # a whole, and errexit applies to that list-level status.
        status, _, _, _, _ = run_engine(
            engine, 'set -e\nfalse && echo and-arm\necho unreachable',
            monkeypatch)
        assert status[0] is ShellError


# -- regression: diagnostics never land in redirected files -------------


class TestDiagnosticRedirectRegression:
    """A dispatch failure's diagnostic models stderr: it must reach the
    captured output, while the ``>`` target is still created empty (the
    redirect happens before command lookup, as in bash)."""

    @pytest.mark.parametrize("engine", ["compiled", "interp"])
    def test_missing_command_diagnostic_skips_file(self, engine,
                                                   monkeypatch):
        status, output, log, _, files = run_engine(
            engine, 'nosuchcmd-qq arg > /tmp/out.txt\necho after',
            monkeypatch)
        assert status == 0
        assert "command not found: nosuchcmd-qq" in output
        assert ("control", "nosuchcmd-qq arg", 127) in log
        assert files[("control", "/tmp/out.txt")] == ""

    @pytest.mark.parametrize("engine", ["compiled", "interp"])
    def test_redirect_truncates_before_failed_lookup(self, engine,
                                                     monkeypatch):
        status, output, _, _, files = run_engine(
            engine,
            'echo old-content > /tmp/out.txt\n'
            'nosuchcmd-qq > /tmp/out.txt\n'
            'cat /tmp/out.txt\necho done',
            monkeypatch)
        assert status == 0
        assert files[("control", "/tmp/out.txt")] == ""
        assert "command not found" in output
        assert output.endswith("done\n")
