"""Tests for the TPC-App extension (the paper's anticipated benchmark)."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import build_model, get_calibration, tpcapp


class TestModel:
    def test_seven_interactions(self):
        assert len(tpcapp.INTERACTIONS) == 7
        names = {i.name for i in tpcapp.INTERACTIONS}
        assert "CreateOrder" in names and "ProductDetail" in names

    def test_standard_mix_is_write_heavy(self):
        writes = [i for i in tpcapp.INTERACTIONS if i.is_write]
        assert len(writes) == 4
        model = tpcapp.build_model(tpcapp.STANDARD_WRITE_RATIO)
        assert model.matrix.write_fraction(tpcapp.INTERACTIONS) == \
            pytest.approx(0.75)

    def test_mean_demands_match_calibration(self):
        model = tpcapp.build_model(0.75)
        _web, app, db = model.mean_demands()
        assert app == pytest.approx(
            tpcapp.CALIBRATION.app_mean(0.75), rel=1e-6)
        assert db == pytest.approx(
            tpcapp.CALIBRATION.db_mean(0.75), rel=1e-6)

    def test_app_tier_dominates(self):
        # SOAP processing: TPC-App is app-bound like RUBiS.
        model = tpcapp.build_model(0.75)
        _web, app, db = model.mean_demands()
        assert app > 2 * db

    def test_registered_in_shared_builders(self):
        model = build_model("tpcapp", 0.75)
        assert model.benchmark == "tpcapp"
        assert get_calibration("tpcapp") is tpcapp.CALIBRATION

    def test_rejects_out_of_range_ratio(self):
        with pytest.raises(WorkloadError):
            tpcapp.build_model(0.0)

    def test_rejects_unknown_mix(self):
        with pytest.raises(WorkloadError):
            tpcapp.build_model(0.75, mix="browse")

    def test_create_order_is_heaviest_write(self):
        model = tpcapp.build_model(0.75)
        create = model.demand("CreateOrder")
        change = model.demand("ChangePaymentMethod")
        assert create.app_s > change.app_s
        assert create.db_s > change.db_s


class TestPipelineIntegration:
    def test_generation_and_deployment(self):
        """TPC-App flows through generator, deployment and simulation —
        the 'rapid inclusion of new benchmarks' claim, demonstrated."""
        from repro.core import ObservationCampaign
        campaign = ObservationCampaign("""
        benchmark tpcapp; platform rohan;
        experiment "tpcapp-smoke" {
            topology 1-1-1, 1-2-1;
            workload 200, 600;
            write_ratio 75%;
            trial { warmup 14s; run 20s; cooldown 4s; }
        }
        """, node_count=10)
        report = campaign.run()
        assert report.trials == 4
        pmap = campaign.performance_map()
        # App-bound: scaling the app tier helps at 600 users.
        rt_1 = pmap.response_time("1-1-1", 600, write_ratio=0.75)
        rt_2 = pmap.response_time("1-2-1", 600, write_ratio=0.75)
        assert rt_2 < rt_1

    def test_app_server_knee_near_calibration(self):
        from repro.workloads.tpcapp import CALIBRATION
        demand = CALIBRATION.app_mean(0.75)
        knee = CALIBRATION.saturation_users(demand)
        # Rohan nodes have two cores: one app server ~ 2x this knee.
        assert 300 <= knee <= 400
