"""Tests for the provenance plane: run cards, preflight, auto-sizing.

A campaign database must describe its own production — the tentpole
property is that nothing but the database is needed to see what ran
and to re-run it to the same bytes.  These tests drive
:mod:`repro.provenance` through real (tiny) campaigns: card recorded,
sidecar exported, digests verifiable, and a re-derivation from the
stored ``campaign_meta`` reproducing every digest the card certifies.
"""

import json
import os

import pytest

from repro import provenance, run_campaign
from repro.cli import main
from repro.core.campaign import META_TBL
from repro.errors import ExperimentError
from repro.experiments.scheduler import calc_parallel_jobs
from repro.obs.tracer import Tracer
from repro.results import ResultsDatabase

SMALL_TBL = """
benchmark rubis;
platform emulab;

experiment "prov-small" {
    topology 1-1-1;
    workload 10;
    write_ratio 10%;
    trial { warmup 1s; run 2s; cooldown 1s; }
}
"""


def frozen_tracer():
    return Tracer(clock=lambda: 0.0)


def run_small(database=None, **kwargs):
    return run_campaign(SMALL_TBL, database=database,
                        tracer=frozen_tracer(), **kwargs)


# -- run cards ----------------------------------------------------------


class TestRunCard:
    def test_campaign_records_exactly_one_card(self):
        report = run_small()
        database = report.database
        assert database.run_card_count() == 1
        card = database.run_cards()[0]
        assert card["version"] == provenance.RUN_CARD_VERSION
        assert card["engine"] in ("compiled", "interp")
        assert card["parameters"]["jobs"] == 1
        assert card["parameters"]["experiments"] == ["prov-small"]
        assert card["results"]["trials"] == 1
        assert card["results"]["completed"] == 1
        assert card["inputs"]["tbl_sha256"] == \
            provenance._sha256(SMALL_TBL)

    def test_card_digests_verify_against_database(self):
        report = run_small()
        card = report.database.run_cards()[-1]
        assert provenance.verify_run_card(card, report.database) == []
        for table in provenance.DIGEST_TABLES:
            assert card["tables"][table]["rows"] == \
                len(report.database.dump_rows(table))

    def test_verify_detects_tampering(self):
        report = run_small()
        database = report.database
        card = database.run_cards()[-1]
        with database._lock:
            database._db.execute(
                "UPDATE trials SET throughput = throughput + 1")
            database._db.commit()
        problems = provenance.verify_run_card(card, database)
        assert any(p.startswith("trials:") for p in problems)

    def test_file_backed_database_exports_sidecar(self, tmp_path):
        path = tmp_path / "campaign.sqlite"
        run_small(database=str(path))
        sidecar = tmp_path / "campaign.sqlite.run_card.json"
        assert sidecar.is_file()
        card = json.loads(sidecar.read_text())
        assert provenance.verify_run_card(
            card, ResultsDatabase(str(path))) == []

    def test_canonical_json_is_stable(self):
        card = {"b": 1, "a": {"z": 2, "y": 3}}
        first = provenance.canonical_json(card)
        second = provenance.canonical_json(
            json.loads(first))
        assert first == second
        assert first.index('"a"') < first.index('"b"')

    def test_rederivation_reproduces_digests(self, tmp_path):
        """The tentpole property: rebuild the campaign from the
        database's own meta and re-run — every table digest the card
        certifies comes out identical."""
        first = run_small(database=str(tmp_path / "one.sqlite"))
        card = first.database.run_cards()[-1]
        stored_tbl = first.database.get_meta(META_TBL)
        assert provenance._sha256(stored_tbl) == \
            card["inputs"]["tbl_sha256"]
        second = run_campaign(
            stored_tbl, database=str(tmp_path / "two.sqlite"),
            jobs=card["parameters"]["jobs"],
            fidelity=card["parameters"]["fidelity"],
            tracer=frozen_tracer())
        assert provenance.table_digests(second.database) == \
            card["tables"]


class TestRunCardStorage:
    def test_run_cards_survive_reopen(self, tmp_path):
        path = str(tmp_path / "c.sqlite")
        run_small(database=path)
        reopened = ResultsDatabase(path)
        assert reopened.run_card_count() == 1
        assert reopened.run_cards()[0]["results"]["trials"] == 1

    def test_absorb_shard_copies_cards(self, tmp_path):
        shard = run_small(database=str(tmp_path / "shard.sqlite")) \
            .database
        target = ResultsDatabase(str(tmp_path / "target.sqlite"))
        target.absorb_shard(shard, meta_prefix="round-0")
        assert target.run_card_count() == 1


# -- preflight ----------------------------------------------------------


class TestPreflight:
    def test_misspelled_engine_fails_campaign(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHELLVM", "compield")
        with pytest.raises(ExperimentError, match="REPRO_SHELLVM"):
            run_small()

    def test_known_engine_values_pass(self, monkeypatch):
        for value in ("interp", "interpreter", "compiled", " COMPILED "):
            monkeypatch.setenv("REPRO_SHELLVM", value)
            report = run_small()
            assert report.completed == 1

    def test_bad_jobs_rejected(self):
        with pytest.raises(ExperimentError, match="jobs"):
            run_small(jobs=0)

    def test_missing_database_directory_rejected(self, tmp_path):
        state = _small_state()
        problems = provenance.preflight(
            state, jobs=1,
            database_path=str(tmp_path / "missing" / "db.sqlite"))
        assert any("does not exist" in p for p in problems)

    def test_node_budget_checked(self):
        # The campaign constructor rejects an undersized cluster up
        # front; preflight re-checks so resumed/rebuilt states get the
        # same guard.  Shrink after construction to reach it.
        state = _small_state()
        state.node_count = 2
        problems = provenance.preflight(state, jobs=1)
        assert any("machines" in p for p in problems)

    def test_clean_state_has_no_problems(self, tmp_path):
        problems = provenance.preflight(
            _small_state(), jobs=4,
            database_path=str(tmp_path / "db.sqlite"))
        assert problems == []


def _small_state(node_count=36):
    from repro.core.campaign import ObservationCampaign

    campaign = ObservationCampaign(SMALL_TBL, node_count=node_count)
    return campaign.state


# -- worker auto-sizing -------------------------------------------------


class TestAutoJobs:
    def test_bounded_by_cpus_and_node_budget(self):
        cpus = os.cpu_count() or 1
        assert 1 <= calc_parallel_jobs() <= max(1, cpus - 1)
        # A huge per-trial cluster caps concurrency at the host budget.
        assert calc_parallel_jobs(node_count=512) == 1
        assert calc_parallel_jobs(node_count=100000) == 1

    def test_never_more_workers_than_trials(self):
        assert calc_parallel_jobs(trial_count=1) == 1
        assert calc_parallel_jobs(trial_count=0) == 1

    def test_campaign_accepts_auto(self):
        report = run_small(jobs="auto")
        card = report.database.run_cards()[-1]
        assert isinstance(card["parameters"]["jobs"], int)
        assert card["parameters"]["jobs"] >= 1


# -- CLI surface --------------------------------------------------------


class TestCardCommand:
    def test_card_prints_and_verifies(self, tmp_path, capsys):
        path = tmp_path / "cli.sqlite"
        tbl = tmp_path / "spec.tbl"
        tbl.write_text(SMALL_TBL)
        assert main(["run", "--tbl", str(tbl), "--db", str(path),
                     "--quiet"]) == 0
        capsys.readouterr()
        assert main(["card", str(path), "--verify"]) == 0
        out = capsys.readouterr().out
        card = json.loads(out[:out.rindex("}") + 1])
        assert card["results"]["trials"] == 1

    def test_card_without_cards_errors(self, tmp_path, capsys):
        path = tmp_path / "empty.sqlite"
        ResultsDatabase(str(path)).close()
        assert main(["card", str(path)]) == 1

    def test_jobs_auto_flag_parses(self, tmp_path, capsys):
        tbl = tmp_path / "spec.tbl"
        tbl.write_text(SMALL_TBL)
        assert main(["run", "--tbl", str(tbl), "--jobs", "auto",
                     "--db", str(tmp_path / "a.sqlite"),
                     "--quiet"]) == 0

    def test_jobs_rejects_garbage(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "--tbl", "x.tbl", "--jobs", "many"])
