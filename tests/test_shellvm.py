"""Tests for the restricted shell interpreter."""

import pytest

from repro.errors import ShellError
from repro.shellvm import ShellInterpreter, parse, tokenize
from repro.spec import get_package, get_platform
from repro.vcluster import VirtualHost, VirtualNetwork, build_archive


@pytest.fixture
def net():
    network = VirtualNetwork()
    for name in ("control", "node-1", "node-2"):
        network.attach(VirtualHost(name, get_platform("warp").node_type()))
    return network


@pytest.fixture
def interp(net):
    return ShellInterpreter(net)


def run(interp, host, text, **kwargs):
    return interp.run_text_on(host, text, **kwargs)


class TestLexer:
    def test_simple_words(self):
        tokens = tokenize("echo hello world")
        words = [t for t in tokens if t.kind == "word"]
        assert len(words) == 3

    def test_operators(self):
        tokens = tokenize("a && b || c; d &")
        ops = [t.value for t in tokens if t.kind == "op"]
        assert ops == ["&&", "||", ";", "&", "\n"]

    def test_comments_stripped(self):
        tokens = tokenize("echo hi # comment here")
        words = [t for t in tokens if t.kind == "word"]
        assert len(words) == 2

    def test_single_quotes_literal(self):
        tokens = tokenize("echo '$HOME and stuff'")
        word = [t for t in tokens if t.kind == "word"][1]
        assert word.value == (("lit", "$HOME and stuff", True),)

    def test_double_quotes_expand(self):
        tokens = tokenize('echo "port=$PORT"')
        word = [t for t in tokens if t.kind == "word"][1]
        assert ("var", "PORT", True) in word.value

    def test_braced_var(self):
        tokens = tokenize("echo ${NAME}_suffix")
        word = [t for t in tokens if t.kind == "word"][1]
        assert word.value[0] == ("var", "NAME", False)
        assert word.value[1] == ("lit", "_suffix", False)

    def test_unterminated_quote(self):
        with pytest.raises(ShellError):
            tokenize("echo 'oops")

    def test_line_continuation(self):
        tokens = tokenize("echo a \\\n  b")
        words = [t for t in tokens if t.kind == "word"]
        assert len(words) == 3

    def test_positional_var(self):
        tokens = tokenize("echo $1$2")
        word = [t for t in tokens if t.kind == "word"][1]
        assert word.value == (("var", "1", False), ("var", "2", False))


class TestParser:
    def test_and_or_chain(self):
        script = parse("a && b || c")
        node = script.statements[0]
        assert len(node.rest) == 2

    def test_if_else(self):
        script = parse(
            "if [ -f /x ]; then\n  echo yes\nelse\n  echo no\nfi\n"
        )
        node = script.statements[0]
        assert len(node.then_body) == 1
        assert len(node.else_body) == 1

    def test_for_loop(self):
        script = parse("for H in a b c; do\n  echo $H\ndone\n")
        node = script.statements[0]
        assert node.variable == "H"
        assert len(node.items) == 3

    def test_unterminated_if(self):
        with pytest.raises(ShellError):
            parse("if true; then\necho x\n")

    def test_assignment_detected(self):
        script = parse("PORT=8009 VERBOSE=1")
        node = script.statements[0]
        assert [a[0] for a in node.assignments] == ["PORT", "VERBOSE"]
        assert node.words == ()

    def test_redirect(self):
        script = parse("echo hi > /tmp/out")
        assert script.statements[0].redirect is not None
        assert not script.statements[0].redirect.append

    def test_append_redirect(self):
        script = parse("echo hi >> /tmp/out")
        assert script.statements[0].redirect.append

    def test_background(self):
        script = parse("/opt/x/daemon --port 80 &")
        assert script.statements[0].background

    def test_line_count(self):
        script = parse("echo a\necho b\n")
        assert script.line_count() == 2


class TestExecution:
    def test_echo_output(self, interp, net):
        status, out = run(interp, net.host("node-1"), "echo hello world")
        assert status == 0
        assert out == "hello world\n"

    def test_variable_expansion(self, interp, net):
        status, out = run(interp, net.host("node-1"),
                          'NAME=tomcat\necho "server: $NAME"')
        assert out == "server: tomcat\n"

    def test_unset_variable_empty(self, interp, net):
        _status, out = run(interp, net.host("node-1"), 'echo "[$MISSING]"')
        assert out == "[]\n"

    def test_unquoted_expansion_splits(self, interp, net):
        _status, out = run(
            interp, net.host("node-1"),
            'HOSTS="node-1 node-2"\n'
            "for H in $HOSTS; do echo $H; done",
        )
        assert out == "node-1\nnode-2\n"

    def test_quoted_expansion_single_field(self, interp, net):
        _status, out = run(
            interp, net.host("node-1"),
            'HOSTS="a b"\nfor H in "$HOSTS"; do echo one:$H; done',
        )
        assert out == "one:a b\n"

    def test_and_short_circuit(self, interp, net):
        status, out = run(interp, net.host("node-1"),
                          "false && echo skipped")
        assert status == 1
        assert out == ""

    def test_or_fallback(self, interp, net):
        status, out = run(interp, net.host("node-1"),
                          "false || echo rescued")
        assert status == 0
        assert out == "rescued\n"

    def test_if_file_test(self, interp, net):
        host = net.host("node-1")
        host.fs.write("/etc/app.conf", "x")
        _status, out = run(
            interp, host,
            "if [ -f /etc/app.conf ]; then echo found; else echo missing; fi",
        )
        assert out == "found\n"

    def test_numeric_test(self, interp, net):
        status, _out = run(interp, net.host("node-1"), "[ 3 -gt 2 ]")
        assert status == 0
        status, _out = run(interp, net.host("node-1"), "[ 2 -gt 3 ]")
        assert status == 1

    def test_negated_test(self, interp, net):
        status, _out = run(interp, net.host("node-1"), "[ ! -f /missing ]")
        assert status == 0

    def test_redirect_writes_file(self, interp, net):
        host = net.host("node-1")
        run(interp, host, "echo line1 > /tmp/log\necho line2 >> /tmp/log")
        assert host.fs.read("/tmp/log") == "line1\nline2\n"

    def test_errexit_aborts(self, interp, net):
        with pytest.raises(ShellError):
            run(interp, net.host("node-1"),
                "set -e\nfalse\necho unreachable")

    def test_errexit_spares_conditions(self, interp, net):
        status, out = run(
            interp, net.host("node-1"),
            "set -e\nif false; then echo a; else echo b; fi\n"
            "false || echo c\n",
        )
        assert out == "b\nc\n"
        assert status == 0

    def test_exit_status(self, interp, net):
        status, _out = run(interp, net.host("node-1"),
                           "exit 3\necho unreachable")
        assert status == 3

    def test_command_not_found(self, interp, net):
        status, out = run(interp, net.host("node-1"), "frobnicate")
        assert status == 127
        assert "command not found" in out

    def test_mkdir_cp_rm(self, interp, net):
        host = net.host("node-1")
        run(interp, host,
            "mkdir -p /opt/app/conf\n"
            "echo data > /opt/app/conf/x\n"
            "cp /opt/app/conf/x /opt/app/conf/y\n"
            "rm /opt/app/conf/x\n")
        assert not host.fs.exists("/opt/app/conf/x")
        assert host.fs.read("/opt/app/conf/y") == "data\n"

    def test_cat(self, interp, net):
        host = net.host("node-1")
        host.fs.write("/a", "1\n")
        host.fs.write("/b", "2\n")
        _status, out = run(interp, host, "cat /a /b")
        assert out == "1\n2\n"

    def test_cd_and_pwd(self, interp, net):
        host = net.host("node-1")
        host.fs.mkdir("/opt/deep")
        _status, out = run(interp, host, "cd /opt/deep\npwd")
        assert out == "/opt/deep\n"

    def test_hostname(self, interp, net):
        _status, out = run(interp, net.host("node-2"), "hostname")
        assert out == "node-2\n"

    def test_sleep_accumulates(self, interp, net):
        run(interp, net.host("node-1"), "sleep 2\nsleep 0.5")
        assert interp.slept_seconds == pytest.approx(2.5)

    def test_execution_log(self, interp, net):
        run(interp, net.host("node-1"), "echo a\nfalse")
        entries = interp.commands_on("node-1")
        assert [e.status for e in entries] == [0, 1]
        assert len(interp.failed_commands()) == 1


class TestRemoteOperations:
    def test_ssh_runs_remotely(self, interp, net):
        status, out = run(interp, net.host("control"),
                          "ssh node-1 hostname")
        assert status == 0
        assert out == "node-1\n"

    def test_ssh_quoted_command(self, interp, net):
        run(interp, net.host("control"),
            "ssh node-1 'mkdir -p /var/run/app'")
        assert net.host("node-1").fs.is_dir("/var/run/app")

    def test_ssh_unknown_host(self, interp, net):
        with pytest.raises(Exception):
            run(interp, net.host("control"), "ssh ghost hostname")

    def test_scp_pushes_file(self, interp, net):
        control = net.host("control")
        control.fs.write("/bundle/conf.xml", "<x/>")
        run(interp, control, "scp /bundle/conf.xml node-1:/etc/conf.xml")
        assert net.host("node-1").fs.read("/etc/conf.xml") == "<x/>"

    def test_scp_pulls_file(self, interp, net):
        net.host("node-2").fs.write("/var/log/out.dat", "data")
        run(interp, net.host("control"),
            "scp node-2:/var/log/out.dat /results/out.dat")
        assert net.host("control").fs.read("/results/out.dat") == "data"

    def test_tar_extracts_archive(self, interp, net):
        host = net.host("node-1")
        package = get_package("tomcat")
        host.fs.write("/tmp/pkg.tar.gz", build_archive(package))
        run(interp, host, "mkdir -p /opt/tomcat\n"
                          "tar -xzf /tmp/pkg.tar.gz -C /opt/tomcat")
        assert host.fs.is_file("/opt/tomcat/VERSION")
        assert host.fs.is_file("/opt/tomcat/bin/catalina.sh")

    def test_background_daemon_spawns(self, interp, net):
        host = net.host("node-1")
        host.fs.write("/opt/d/bin/server", "#!binary")
        run(interp, host, "/opt/d/bin/server --port 80 &")
        assert host.daemon_running("/opt/d/bin/server")

    def test_killall_stops_daemon(self, interp, net):
        host = net.host("node-1")
        host.fs.write("/opt/d/bin/server", "#!binary")
        run(interp, host, "/opt/d/bin/server &\nkillall server")
        assert not host.daemon_running("/opt/d/bin/server")

    def test_subscript_invocation(self, interp, net):
        host = net.host("control")
        host.fs.write("/scripts/child.sh", "echo child:$1\n")
        status, out = run(interp, host, "bash /scripts/child.sh arg1")
        assert status == 0
        assert out == "child:arg1\n"

    def test_subscript_vars_do_not_leak(self, interp, net):
        host = net.host("control")
        host.fs.write("/scripts/child.sh", "LEAK=yes\n")
        _status, out = run(
            interp, host,
            'LEAK=no\nbash /scripts/child.sh\necho "leak=$LEAK"',
        )
        assert out == "leak=no\n"

    def test_direct_sh_invocation(self, interp, net):
        host = net.host("control")
        host.fs.write("/scripts/run.sh", "echo direct\n")
        _status, out = run(interp, host, "/scripts/run.sh")
        assert out == "direct\n"

    def test_depth_guard(self, interp, net):
        host = net.host("control")
        host.fs.write("/scripts/loop.sh", "bash /scripts/loop.sh\n")
        with pytest.raises(ShellError, match="nesting"):
            run(interp, host, "bash /scripts/loop.sh")

    def test_missing_script(self, interp, net):
        with pytest.raises(ShellError):
            interp.run_script_file(net.host("control"), "/missing.sh")
