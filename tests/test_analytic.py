"""The analytic fast-path tier and the fidelity-aware API.

The contracts under test:

- the Schweitzer AMVA solver tracks exact MVA away from saturation and
  dispatches through the one ``sim.solve`` entry point;
- ``fidelity="analytic"`` campaigns are byte-stable across worker
  counts, and the default ``fidelity="des"`` path is untouched;
- a tiered (``fidelity="auto"``) exploration finds the same knee as a
  pure DES exploration within one workload-ladder step, confirms it
  with DES trials, and resumes byte-identically after a kill;
- a million-user characterization of the 4-16-8 topology completes in
  seconds, not simulation-hours;
- the service plane carries fidelity over the wire and dispatches
  analytic trials on the fleet's fast lane;
- ``repro trace`` renders the per-trial fidelity tier on both new
  databases and databases written before the tier existed.
"""

import os
import sqlite3
import time

import pytest

from repro.api import (
    plan_campaign,
    resume_campaign,
    run_adaptive,
    run_campaign,
    solve,
)
from repro.core.campaign import META_FIDELITY, ObservationCampaign
from repro.errors import ExperimentError, SimulationError
from repro.planner.policy import KNEE
from repro.sim import (
    ANALYTIC,
    AUTO,
    DES,
    AnalyticModel,
    AnalyticStation,
    check_fidelity,
    mva,
)
from repro.workloads.calibration import RUBIS

KNEE_TBL = """
benchmark rubis;
platform emulab;

experiment "adaptive" {
    topology 1-1-1;
    workload 100, 200, 300, 400, 500, 600, 700, 800;
    write_ratio 15%;
    trial { warmup 2s; run 10s; cooldown 2s; }
    slo { response_time 1.0s; error_ratio 10%; }
}
"""

SCALEOUT_TBL = """
benchmark rubis;
platform emulab;

experiment "scaleout" {
    topology 1-2-2;
    workload 200, 400, 600, 800, 1000, 1200, 1400, 1600;
    write_ratio 25%;
    trial { warmup 2s; run 10s; cooldown 2s; }
    slo { response_time 1.0s; error_ratio 10%; }
}
"""

MILLION_TBL = """
benchmark rubis;
platform emulab;

experiment "million" {
    topology 4-16-8;
    workload 1000, 2000, 4000, 8000, 16000, 32000, 64000, 125000,
             250000, 500000, 1000000;
    write_ratio 15%;
    trial { warmup 2s; run 10s; cooldown 2s; }
    slo { response_time 1.0s; error_ratio 10%; }
}
"""


def observation_dump(database):
    assert database.integrity_check() == []
    return {
        table: database.dump_rows(table)
        for table in ("trials", "host_cpu", "state_metrics",
                      "planner_decisions")
    }


def _stations(write_ratio=0.15):
    return [
        mva.MvaStation("web", RUBIS.web_s),
        mva.MvaStation("app", RUBIS.app_mean(write_ratio)),
        mva.MvaStation("db", RUBIS.db_mean(write_ratio)),
    ]


class TestAnalyticSolver:
    @pytest.mark.parametrize("users", [1, 10, 60, 140])
    def test_tracks_exact_mva_below_saturation(self, users):
        exact = solve(_stations(), fidelity="mva", users=users,
                      think_time=RUBIS.think_time_s)
        fluid = solve(_stations(), fidelity=ANALYTIC, users=users,
                      think_time=RUBIS.think_time_s)
        assert fluid.throughput == pytest.approx(exact.throughput,
                                                 rel=0.02)
        assert fluid.response_time == pytest.approx(exact.response_time,
                                                    rel=0.05)

    def test_million_users_solves_in_milliseconds(self):
        start = time.perf_counter()
        result = solve(_stations(), fidelity=ANALYTIC, users=1_000_000,
                       think_time=RUBIS.think_time_s)
        assert time.perf_counter() - start < 1.0
        # Fully saturated: throughput pinned at the bottleneck's
        # capacity, response time dominated by its queue.
        heaviest = max(_stations(), key=lambda s: s.demand)
        assert result.throughput == pytest.approx(1.0 / heaviest.demand,
                                                  rel=0.01)
        assert result.bottleneck() == heaviest.name

    def test_dispatcher_rejects_mismatched_tiers(self):
        with pytest.raises(SimulationError, match="users="):
            solve(_stations(), fidelity=ANALYTIC)
        with pytest.raises(SimulationError, match="fidelity 'des'"):
            solve(_stations(), fidelity=DES, users=10,
                  think_time=RUBIS.think_time_s)
        with pytest.raises(SimulationError, match="unknown fidelity"):
            solve(_stations(), fidelity="quantum", users=10,
                  think_time=RUBIS.think_time_s)
        model = AnalyticModel(
            stations=(AnalyticStation("db", 0.005),),
            think_time=RUBIS.think_time_s)
        with pytest.raises(SimulationError, match="'des'"):
            solve(model, fidelity=DES, users=10)

    def test_check_fidelity_names_the_trio(self):
        for name in (DES, ANALYTIC, AUTO):
            assert check_fidelity(name) == name
        with pytest.raises(SimulationError, match="unknown fidelity"):
            check_fidelity("exact")


class TestFidelityCampaigns:
    def test_analytic_grid_byte_stable_across_jobs(self):
        def run(jobs):
            campaign = ObservationCampaign(KNEE_TBL, node_count=8)
            campaign.run(jobs=jobs,
                         backend="thread" if jobs > 1 else None,
                         fidelity=ANALYTIC)
            return campaign.database
        assert observation_dump(run(1)) == observation_dump(run(4))

    def test_analytic_rows_carry_their_tier(self):
        report = run_campaign(KNEE_TBL, node_count=8, fidelity=ANALYTIC)
        rows = report.database.query()
        assert len(rows) == 8
        assert {r.fidelity for r in rows} == {ANALYTIC}
        assert report.database.get_meta(META_FIDELITY) == ANALYTIC
        # The analytic tier reproduces the DES knee shape: the SLO
        # break sits between the same ladder rungs.
        by_load = {r.workload: r for r in rows}
        assert by_load[100].metrics.mean_response_s < 1.0
        assert by_load[800].metrics.mean_response_s > 1.0

    def test_default_fidelity_is_des(self):
        report = run_campaign(KNEE_TBL, node_count=8)
        assert {r.fidelity for r in report.database.query()} == {DES}
        assert report.database.get_meta(META_FIDELITY) == DES

    def test_fixed_grid_rejects_auto(self):
        with pytest.raises(ExperimentError, match="adaptive-exploration"):
            run_campaign(KNEE_TBL, node_count=8, fidelity=AUTO)

    def test_query_filters_by_fidelity(self):
        campaign = ObservationCampaign(KNEE_TBL, node_count=8)
        campaign.run_adaptive(policy="knee", fidelity=AUTO)
        rows = campaign.database.query(fidelity=ANALYTIC)
        assert rows and all(r.fidelity == ANALYTIC for r in rows)
        des_rows = campaign.database.query(fidelity=DES)
        assert des_rows and all(r.fidelity == DES for r in des_rows)

    def test_des_insert_keeps_the_analytic_row(self):
        # The tiered flow depends on both tiers of one sweep point
        # coexisting: the DES confirmation must not replace the
        # analytic exploration row.
        campaign = ObservationCampaign(KNEE_TBL, node_count=8)
        campaign.run_adaptive(policy="knee", fidelity=AUTO)
        keys = {(r.workload, r.fidelity)
                for r in campaign.database.query()}
        confirmed = {w for w, f in keys if f == DES}
        assert confirmed and all((w, ANALYTIC) in keys
                                 for w in confirmed)


class TestTieredExploration:
    @pytest.mark.parametrize("tbl", [KNEE_TBL, SCALEOUT_TBL])
    def test_knee_within_one_ladder_step_of_des(self, tbl):
        tiered = run_adaptive(tbl, policy="knee", fidelity=AUTO,
                              node_count=16)
        des = run_adaptive(tbl, policy="knee", node_count=16)
        tiered_knees = [d for d in tiered.outcome.knees
                        if d.action == KNEE]
        des_knees = [d for d in des.outcome.knees if d.action == KNEE]
        assert len(tiered_knees) == len(des_knees) == 1
        from repro.spec.tbl import parse as parse_tbl
        ladder = list(parse_tbl(tbl).experiments[0].workloads)
        gap = abs(ladder.index(tiered_knees[0].workload)
                  - ladder.index(des_knees[0].workload))
        assert gap <= 1

    def test_knee_is_des_confirmed(self):
        report = run_adaptive(KNEE_TBL, policy="knee", fidelity=AUTO,
                              node_count=8)
        knees = [d for d in report.outcome.knees if d.action == KNEE]
        assert len(knees) == 1
        assert "DES-confirmed" in knees[0].reason
        # Both the knee and the pass point below it hold a DES trial.
        des_loads = {r.workload for r in report.database.query()
                     if r.fidelity == DES}
        assert knees[0].workload in des_loads

    def test_auto_requires_a_tiered_capable_policy(self):
        with pytest.raises(ExperimentError, match="tiered"):
            run_adaptive(KNEE_TBL, policy="grid", fidelity=AUTO,
                         node_count=8)
        report = run_adaptive(KNEE_TBL, policy="tiered", node_count=8,
                              fidelity=AUTO)
        assert report.policy == "tiered"

    def test_analytic_exploration_never_touches_des(self):
        report = run_adaptive(KNEE_TBL, policy="knee",
                              fidelity=ANALYTIC, node_count=8)
        assert report.policy == "knee"
        rows = report.database.query()
        assert rows and {r.fidelity for r in rows} == {ANALYTIC}
        decisions = report.database.planner_decisions()
        measured = [d for d in decisions if d["action"] == "measure"]
        assert measured and all(d["fidelity"] == ANALYTIC
                                for d in measured)

    def test_jobs_do_not_change_tiered_decisions_or_rows(self):
        def explore(jobs):
            campaign = ObservationCampaign(KNEE_TBL, node_count=8)
            campaign.run_adaptive(
                policy="knee", fidelity=AUTO, jobs=jobs,
                backend="thread" if jobs > 1 else None)
            return campaign.database
        assert observation_dump(explore(1)) == observation_dump(explore(4))

    def test_plan_campaign_previews_analytic_rounds(self):
        preview = plan_campaign(KNEE_TBL, policy="knee",
                                fidelity=ANALYTIC)
        assert preview.decisions
        assert all(d.fidelity == ANALYTIC for d in preview.decisions)
        tiered = plan_campaign(KNEE_TBL, policy="knee", fidelity=AUTO)
        assert tiered.policy_name == "tiered"
        assert all(d.fidelity == ANALYTIC for d in tiered.decisions)


class TestTieredResume:
    class _Kill(Exception):
        pass

    def _killed_database(self, after):
        campaign = ObservationCampaign(KNEE_TBL, node_count=8)
        seen = []

        def killer(result):
            seen.append(result)
            if len(seen) == after:
                raise self._Kill()

        with pytest.raises(self._Kill):
            campaign.run_adaptive(policy="knee", fidelity=AUTO,
                                  on_result=killer)
        return campaign.database

    @pytest.mark.parametrize("after", [1, 3, 5])
    def test_killed_tiered_exploration_resumes_byte_identically(
            self, after):
        reference = ObservationCampaign(KNEE_TBL, node_count=8)
        reference.run_adaptive(policy="knee", fidelity=AUTO)
        database = self._killed_database(after=after)
        assert database.get_meta(META_FIDELITY) == AUTO
        report = resume_campaign(database)
        assert report.policy == "tiered"
        assert observation_dump(database) == \
            observation_dump(reference.database)


class TestMillionUsers:
    def test_auto_explore_characterizes_a_million_users_fast(self):
        start = time.perf_counter()
        report = run_adaptive(MILLION_TBL, policy="knee", fidelity=AUTO,
                              node_count=40)
        wall = time.perf_counter() - start
        assert wall < 10.0
        knees = [d for d in report.outcome.knees if d.action == KNEE]
        assert len(knees) == 1
        # The calibrated 4-16-8 DB tier saturates near 4000 users;
        # the exploration lands the knee on that ladder rung without
        # ever running DES above it.
        assert knees[0].workload == 4000
        des_loads = {r.workload for r in report.database.query()
                     if r.fidelity == DES}
        assert des_loads and max(des_loads) <= 8000
        analytic_loads = {r.workload for r in report.database.query()
                          if r.fidelity == ANALYTIC}
        assert 1_000_000 in analytic_loads


class TestServiceFidelity:
    def test_fidelity_crosses_the_wire_and_uses_the_fast_lane(
            self, tmp_path):
        from repro.service.client import CampaignClient
        from repro.service.http import ServiceDaemon

        daemon = ServiceDaemon(jobs=2)
        try:
            client = CampaignClient(daemon.start())
            db_path = tmp_path / "analytic.db"
            cid = client.submit(KNEE_TBL, db_path=db_path, jobs=2,
                                fidelity=ANALYTIC)
            record = client.wait(cid, timeout=120)
            assert record["state"] == "done"
            assert record["fidelity"] == ANALYTIC
            stats = client.status()["fleet"]
            assert stats["fast_workers"] >= 2
            assert stats["dispatched"] == record["trials"]
        finally:
            daemon.stop()
        from repro.results.database import ResultsDatabase
        merged = ResultsDatabase(db_path)
        try:
            local = ObservationCampaign(KNEE_TBL, node_count=36)
            local.run(fidelity=ANALYTIC)
            assert merged.dump_rows("trials") == \
                local.database.dump_rows("trials")
            assert merged.get_meta(META_FIDELITY) == ANALYTIC
        finally:
            merged.close()

    def test_daemon_resume_recovers_fidelity_from_meta(self, tmp_path):
        from repro.results.database import ResultsDatabase
        from repro.service.controller import CampaignController

        # Seed a completed analytic checkpoint, then resume it with no
        # explicit fidelity: the controller must recover the tier from
        # campaign_meta instead of falling back to DES.
        db_path = tmp_path / "resume.db"
        campaign = ObservationCampaign(
            KNEE_TBL, database=ResultsDatabase(db_path), node_count=8)
        campaign.run(fidelity=ANALYTIC)
        campaign.database.close()
        controller = CampaignController(jobs=2)
        try:
            cid = controller.submit(db_path=db_path, resume=True)
            record = controller.wait(cid, timeout=120)
            assert record["state"] == "done"
            assert record["trials"] == 0       # everything checkpointed
            assert record["skipped"] == 8
        finally:
            controller.shutdown()
        merged = ResultsDatabase(db_path)
        try:
            assert {r.fidelity for r in merged.query()} == {ANALYTIC}
        finally:
            merged.close()


# The seed schema, frozen: what a pre-fidelity database looks like on
# disk.  The migration test writes this verbatim and lets the
# constructor upgrade it.
_LEGACY_TRIALS = """
CREATE TABLE trials (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    experiment_name TEXT NOT NULL, benchmark TEXT NOT NULL,
    platform TEXT NOT NULL, topology TEXT NOT NULL,
    workload INTEGER NOT NULL, write_ratio REAL NOT NULL,
    seed INTEGER NOT NULL, status TEXT NOT NULL,
    completed_requests INTEGER NOT NULL, errors INTEGER NOT NULL,
    timeouts INTEGER NOT NULL, rejections INTEGER NOT NULL,
    duration_s REAL NOT NULL, throughput REAL NOT NULL,
    mean_response_s REAL NOT NULL, p50_response_s REAL NOT NULL,
    p90_response_s REAL NOT NULL, p99_response_s REAL NOT NULL,
    collected_bytes INTEGER NOT NULL, script_lines INTEGER NOT NULL,
    config_lines INTEGER NOT NULL, generated_files INTEGER NOT NULL,
    machine_count INTEGER NOT NULL,
    UNIQUE (experiment_name, topology, workload, write_ratio, seed)
)
"""

_LEGACY_DECISIONS = """
CREATE TABLE planner_decisions (
    round INTEGER NOT NULL, seq INTEGER NOT NULL,
    policy TEXT NOT NULL, experiment_name TEXT NOT NULL,
    action TEXT NOT NULL, topology TEXT, workload INTEGER,
    write_ratio REAL, reason TEXT NOT NULL,
    PRIMARY KEY (round, seq)
)
"""


def _downgrade_to_legacy(path):
    """Strip the fidelity column, reproducing a pre-tier database."""
    connection = sqlite3.connect(path)
    columns = ("id, experiment_name, benchmark, platform, topology, "
               "workload, write_ratio, seed, status, completed_requests, "
               "errors, timeouts, rejections, duration_s, throughput, "
               "mean_response_s, p50_response_s, p90_response_s, "
               "p99_response_s, collected_bytes, script_lines, "
               "config_lines, generated_files, machine_count")
    with connection:
        connection.execute("PRAGMA foreign_keys=OFF")
        connection.execute("PRAGMA legacy_alter_table=ON")
        connection.execute("ALTER TABLE trials RENAME TO trials_current")
        connection.execute(_LEGACY_TRIALS)
        connection.execute(
            f"INSERT INTO trials SELECT {columns} FROM trials_current")
        connection.execute("DROP TABLE trials_current")
        connection.execute(
            "ALTER TABLE planner_decisions RENAME TO decisions_current")
        connection.execute(_LEGACY_DECISIONS)
        connection.execute(
            "INSERT INTO planner_decisions SELECT round, seq, policy, "
            "experiment_name, action, topology, workload, write_ratio, "
            "reason FROM decisions_current")
        connection.execute("DROP TABLE decisions_current")
    connection.close()


class TestTraceFidelityColumn:
    def _traced_database(self, tmp_path, **kwargs):
        from repro.obs import Tracer
        from repro.results.database import ResultsDatabase

        path = tmp_path / "traced.db"
        campaign = ObservationCampaign(
            KNEE_TBL, database=ResultsDatabase(path), node_count=8,
            tracer=Tracer())
        campaign.run_adaptive(policy="knee", **kwargs)
        campaign.database.close()
        return path

    def test_trace_renders_the_tier_column(self, tmp_path, capsys):
        from repro.cli import main

        path = self._traced_database(tmp_path, fidelity=AUTO)
        assert main(["trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert " tier " in out
        assert "analytic" in out
        assert "policy 'tiered'" in out

    def test_trace_renders_on_a_pre_tier_database(self, tmp_path,
                                                  capsys):
        from repro.cli import main
        from repro.results.database import ResultsDatabase

        path = self._traced_database(tmp_path)
        _downgrade_to_legacy(path)
        # Reopening migrates in place: the tier column reappears with
        # every historical row backfilled as DES.
        migrated = ResultsDatabase(path)
        try:
            assert {r.fidelity for r in migrated.query()} == {DES}
        finally:
            migrated.close()
        assert main(["trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert " tier " in out
        assert " des " in out


class TestFidelityCli:
    @pytest.fixture
    def tbl_file(self, tmp_path):
        path = tmp_path / "knee.tbl"
        path.write_text(KNEE_TBL)
        return path

    def test_explore_auto_reports_a_confirmed_knee(self, tbl_file,
                                                   tmp_path, capsys):
        from repro.cli import main

        db = tmp_path / "auto.db"
        status = main(["explore", "--tbl", str(tbl_file),
                       "--db", str(db), "--fidelity", "auto", "--quiet"])
        assert status == 0
        out = capsys.readouterr().out
        assert "DES-confirmed SLO knee" in out
        assert os.path.exists(db)

    def test_run_rejects_auto(self, tbl_file, tmp_path, capsys):
        from repro.cli import main

        status = main(["run", "--tbl", str(tbl_file),
                       "--db", str(tmp_path / "x.db"),
                       "--fidelity", "auto", "--quiet"])
        assert status == 1
        assert "adaptive-exploration" in capsys.readouterr().err

    def test_figure_accepts_analytic(self, tmp_path, capsys):
        from repro.cli import main

        status = main(["figure", "--id", "figure1", "--scale", "0.2",
                       "--fidelity", "analytic"])
        assert status == 0
        assert "Figure 1." in capsys.readouterr().out


class TestDeprecatedKnobs:
    def test_db_node_speed_warns(self):
        from repro.experiments.ablations import mva_vs_observation

        with pytest.warns(DeprecationWarning, match="db_node_speed"):
            rows = mva_vs_observation(lambda users: None, [],
                                      db_node_speed=2.0)
        assert rows == []

    def test_default_call_is_warning_free(self, recwarn):
        from repro.experiments.ablations import mva_vs_observation

        assert mva_vs_observation(lambda users: None, []) == []
        assert not [w for w in recwarn
                    if issubclass(w.category, DeprecationWarning)]
