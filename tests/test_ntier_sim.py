"""Behavioural tests for the n-tier simulation.

These pin the saturation structure the reproduction promises: per-app-
server knees near 250 users, DB knees near 1700/2900, the write-ratio
inversion, timeout/rejection error paths, and determinism.
"""

import pytest

from repro.sim import OK, TIMEOUT, NTierSimulation
from tests.conftest import make_driver, make_system


def run_point(users, apps=1, dbs=1, write_ratio=0.15, run=60.0,
              benchmark="rubis", seed=42, db_node_type=None, webs=1,
              timeout=8.0, app_server="jonas", platform="emulab"):
    driver = make_driver(benchmark=benchmark, users=users,
                         write_ratio=write_ratio, warmup=10.0, run=run,
                         cooldown=5.0, seed=seed, timeout=timeout)
    system = make_system(webs=webs, apps=apps, dbs=dbs, driver=driver,
                         db_node_type=db_node_type, app_server=app_server,
                         platform=platform)
    harness = NTierSimulation(system)
    records = harness.run()
    window = (driver.warmup, driver.warmup + driver.run)
    measured = [r for r in records
                if window[0] <= r.finished_at <= window[1]
                and r.finished_at == r.finished_at]   # drop NaN (in flight)
    ok = [r for r in measured if r.status == OK]
    errors = [r for r in measured if r.status != OK]
    throughput = len(ok) / driver.run
    mean_rt = (sum(r.response_time() for r in ok) / len(ok)) if ok else 0.0
    error_ratio = len(errors) / len(measured) if measured else 0.0
    return {
        "harness": harness, "throughput": throughput, "mean_rt": mean_rt,
        "error_ratio": error_ratio, "ok": ok, "system": system,
    }


class TestLightLoad:
    def test_response_time_near_demand_sum(self):
        result = run_point(users=50, run=60.0)
        # At 50 users the system is far below every knee: RT is around
        # the demand sum (~35 ms) plus hops, well under 150 ms.
        assert result["mean_rt"] < 0.15
        assert result["error_ratio"] == 0.0

    def test_throughput_tracks_population(self):
        # X ~= N / (Z + R) in the latency-bound regime.
        result = run_point(users=100, run=60.0)
        assert result["throughput"] == pytest.approx(100 / 7.0, rel=0.12)

    def test_scaling_population_scales_throughput(self):
        small = run_point(users=50, run=60.0)
        large = run_point(users=150, run=60.0)
        ratio = large["throughput"] / small["throughput"]
        assert ratio == pytest.approx(3.0, rel=0.15)


class TestAppServerKnee:
    def test_one_app_server_caps_near_35_per_second(self):
        # Capacity = 1 / D_app(0.15) = 35 req/s (=> ~245 users); measure
        # just past the knee, before timeout abandonment erodes goodput.
        result = run_point(users=280, run=60.0)
        assert result["throughput"] == pytest.approx(35.0, rel=0.10)

    def test_response_time_grows_past_knee(self):
        below = run_point(users=150, run=60.0)
        above = run_point(users=320, run=60.0)
        assert above["mean_rt"] > 5 * below["mean_rt"]

    def test_second_app_server_doubles_capacity(self):
        one = run_point(users=600, apps=1, run=40.0)
        two = run_point(users=600, apps=2, run=40.0)
        assert two["throughput"] > 1.7 * one["throughput"]

    def test_app_cpu_saturated_past_knee(self):
        result = run_point(users=350, run=40.0)
        system = result["system"]
        app_station = result["harness"].station_of(
            system.app_servers[0].host.name
        )
        _t, area = app_station.area_reading()
        total_time = result["harness"].sim.now
        assert area / total_time > 0.9

    def test_db_idle_when_app_is_bottleneck(self):
        result = run_point(users=350, run=40.0)
        system = result["system"]
        db_station = result["harness"].station_of(
            system.db_backends[0].host.name
        )
        _t, area = db_station.area_reading()
        assert area / result["harness"].sim.now < 0.35


class TestWriteRatioInversion:
    def test_high_write_ratio_short_response(self):
        # Figure 1's shape: at 250 users, wr=0 is saturated but wr=0.9
        # barely stresses the app tier.
        heavy = run_point(users=250, write_ratio=0.0, run=40.0)
        light = run_point(users=250, write_ratio=0.9, run=40.0)
        assert light["mean_rt"] < heavy["mean_rt"] / 4

    def test_write_ratio_shifts_load_toward_db(self):
        def db_over_app(write_ratio):
            result = run_point(users=150, write_ratio=write_ratio, run=40.0)
            harness = result["harness"]
            system = result["system"]
            app_area = harness.station_of(
                system.app_servers[0].host.name).area_reading()[1]
            db_area = harness.station_of(
                system.db_backends[0].host.name).area_reading()[1]
            return db_area / app_area

        # db:app demand ratio is 4/33 at wr=0 and 4.9/6 at wr=0.9.
        assert db_over_app(0.9) > 4 * db_over_app(0.0)


class TestDatabaseTier:
    def test_db_knee_near_1700_with_8_app_servers(self):
        result = run_point(users=1900, apps=8, dbs=1, run=40.0)
        # DB capacity = 1 / 0.00415 = 241 req/s.
        assert result["throughput"] == pytest.approx(241, rel=0.10)

    def test_second_db_lifts_1700_user_ceiling(self):
        one = run_point(users=2100, apps=9, dbs=1, run=30.0)
        two = run_point(users=2100, apps=9, dbs=2, run=30.0)
        assert two["mean_rt"] < one["mean_rt"] / 2

    def test_raidb1_write_replication_limits_scaling(self):
        # With 100% reads 2 DBs would double capacity; at wr=15% the
        # write-all rule caps the gain near 1.7x.
        one = run_point(users=2600, apps=12, dbs=1, run=30.0)
        two = run_point(users=2600, apps=12, dbs=2, run=30.0)
        gain = two["throughput"] / one["throughput"]
        assert 1.4 < gain < 1.95

    def test_slow_db_node_saturates_early(self):
        # The Emulab baseline's 600 MHz DB host inflates DB demand 5x.
        slow = run_point(users=300, write_ratio=0.9, run=40.0,
                         db_node_type="emulab-low")
        fast = run_point(users=300, write_ratio=0.9, run=40.0)
        assert slow["mean_rt"] > 3 * fast["mean_rt"]


class TestErrorPaths:
    def test_timeouts_at_heavy_overload(self):
        result = run_point(users=900, apps=2, run=40.0)
        # 900 users on ~490-user capacity: abandonment must appear.
        assert result["error_ratio"] > 0.10

    def test_no_errors_below_knee(self):
        result = run_point(users=400, apps=2, run=40.0)
        assert result["error_ratio"] < 0.02

    def test_timeout_records_have_status(self):
        result = run_point(users=900, apps=2, run=30.0)
        harness = result["harness"]
        statuses = {r.status for r in harness.records}
        assert TIMEOUT in statuses


class TestWeblogicOnWarp:
    def test_dual_core_warp_doubles_capacity(self):
        # Figure 3: Weblogic on Warp sustains ~2x the users of JOnAS on
        # Emulab — carried by the two 3.06 GHz CPUs per Warp node.
        jonas = run_point(users=700, run=30.0, platform="emulab")
        weblogic = run_point(users=700, run=30.0, platform="warp",
                             app_server="weblogic")
        assert weblogic["throughput"] > 1.6 * jonas["throughput"]


class TestRubbos:
    def test_readonly_saturates_before_submission_mix(self):
        readonly = run_point(users=2600, apps=1, dbs=1, write_ratio=0.0,
                             benchmark="rubbos", webs=0, run=30.0)
        mixed = run_point(users=2600, apps=1, dbs=1, write_ratio=0.15,
                          benchmark="rubbos", webs=0, run=30.0)
        assert readonly["mean_rt"] > 2 * mixed["mean_rt"]

    def test_db_is_the_rubbos_bottleneck(self):
        result = run_point(users=2400, apps=1, dbs=1, write_ratio=0.0,
                           benchmark="rubbos", webs=0, run=30.0)
        harness = result["harness"]
        system = result["system"]
        db_util = harness.station_of(
            system.db_backends[0].host.name).area_reading()[1]
        app_util = harness.station_of(
            system.app_servers[0].host.name).area_reading()[1]
        assert db_util > app_util


class TestDeterminism:
    def test_same_seed_same_records(self):
        first = run_point(users=120, run=30.0, seed=7)
        second = run_point(users=120, run=30.0, seed=7)
        assert first["throughput"] == second["throughput"]
        assert first["mean_rt"] == second["mean_rt"]

    def test_different_seed_differs(self):
        first = run_point(users=120, run=30.0, seed=7)
        second = run_point(users=120, run=30.0, seed=8)
        assert first["mean_rt"] != second["mean_rt"]
