"""Tests for the simulation engine, PS stations, RNG and MVA baseline."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim import ProcessorSharingStation, RandomStreams, Simulator
from repro.sim import mva


class TestEngine:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.0, lambda: seen.append("b"))
        sim.schedule(1.0, lambda: seen.append("a"))
        sim.schedule(3.0, lambda: seen.append("c"))
        sim.run_all()
        assert seen == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self):
        sim = Simulator()
        seen = []
        for tag in ("first", "second", "third"):
            sim.schedule(1.0, lambda t=tag: seen.append(t))
        sim.run_all()
        assert seen == ["first", "second", "third"]

    def test_cancelled_event_skipped(self):
        sim = Simulator()
        seen = []
        event = sim.schedule(1.0, lambda: seen.append("no"))
        sim.schedule(2.0, lambda: seen.append("yes"))
        event.cancel()
        sim.run_all()
        assert seen == ["yes"]

    def test_run_until_stops_clock(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run_until(3.0)
        assert sim.now == 3.0
        assert sim.peek_time() == 5.0

    def test_schedule_during_event(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: sim.schedule(1.0,
                                               lambda: seen.append("x")))
        sim.run_all()
        assert seen == ["x"]
        assert sim.now == pytest.approx(2.0)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)


class TestRandomStreams:
    def test_streams_are_deterministic(self):
        a = RandomStreams(7).stream("think").random()
        b = RandomStreams(7).stream("think").random()
        assert a == b

    def test_streams_differ_by_name(self):
        streams = RandomStreams(7)
        assert streams.stream("a").random() != streams.stream("b").random()

    def test_streams_differ_by_seed(self):
        assert RandomStreams(1).stream("x").random() != \
            RandomStreams(2).stream("x").random()

    def test_exponential_mean(self):
        streams = RandomStreams(42)
        samples = [streams.exponential("e", 2.0) for _ in range(20000)]
        assert sum(samples) / len(samples) == pytest.approx(2.0, rel=0.05)

    def test_weighted_choice_distribution(self):
        streams = RandomStreams(3)
        counts = {"a": 0, "b": 0}
        for _ in range(10000):
            counts[streams.choice_weighted("c", ["a", "b"], [3, 1])] += 1
        assert counts["a"] / 10000 == pytest.approx(0.75, abs=0.03)


class TestProcessorSharing:
    def test_single_job_service_time(self):
        sim = Simulator()
        station = ProcessorSharingStation(sim, "s")
        done = []
        station.submit(2.0, lambda: done.append(sim.now))
        sim.run_all()
        assert done == [pytest.approx(2.0)]

    def test_two_jobs_share_one_core(self):
        sim = Simulator()
        station = ProcessorSharingStation(sim, "s", cores=1)
        done = []
        station.submit(1.0, lambda: done.append(("a", sim.now)))
        station.submit(1.0, lambda: done.append(("b", sim.now)))
        sim.run_all()
        # Both share the core: each finishes at t=2.
        assert done[0][1] == pytest.approx(2.0)
        assert done[1][1] == pytest.approx(2.0)

    def test_two_cores_run_two_jobs_in_parallel(self):
        sim = Simulator()
        station = ProcessorSharingStation(sim, "s", cores=2)
        done = []
        station.submit(1.0, lambda: done.append(sim.now))
        station.submit(1.0, lambda: done.append(sim.now))
        sim.run_all()
        assert done == [pytest.approx(1.0), pytest.approx(1.0)]

    def test_speed_scales_service(self):
        sim = Simulator()
        station = ProcessorSharingStation(sim, "s", speed=0.2)
        done = []
        station.submit(1.0, lambda: done.append(sim.now))
        sim.run_all()
        # A 600 MHz node runs a 3 GHz-calibrated demand 5x slower.
        assert done == [pytest.approx(5.0)]

    def test_late_arrival_shares_remaining(self):
        sim = Simulator()
        station = ProcessorSharingStation(sim, "s")
        done = {}
        station.submit(2.0, lambda: done.setdefault("a", sim.now))
        sim.schedule(1.0, lambda: station.submit(
            2.0, lambda: done.setdefault("b", sim.now)))
        sim.run_all()
        # a: 1s alone + 2s shared = finishes at 3; b: 2s shared + 1s
        # alone = finishes at 4.
        assert done["a"] == pytest.approx(3.0)
        assert done["b"] == pytest.approx(4.0)

    def test_concurrency_limit_queues(self):
        sim = Simulator()
        station = ProcessorSharingStation(sim, "s", concurrency_limit=1)
        done = []
        station.submit(1.0, lambda: done.append(("a", sim.now)))
        station.submit(1.0, lambda: done.append(("b", sim.now)))
        sim.run_all()
        # FIFO: b only starts when a departs.
        assert done[0] == ("a", pytest.approx(1.0))
        assert done[1] == ("b", pytest.approx(2.0))

    def test_queue_limit_rejects(self):
        sim = Simulator()
        station = ProcessorSharingStation(sim, "s", concurrency_limit=1,
                                          queue_limit=1)
        assert station.submit(1.0, lambda: None)
        assert station.submit(1.0, lambda: None)
        assert not station.submit(1.0, lambda: None)
        assert station.rejected == 1

    def test_utilization_accounting(self):
        sim = Simulator()
        station = ProcessorSharingStation(sim, "s", cores=2)
        t0, area0 = station.area_reading()
        station.submit(1.0, lambda: None)
        sim.run_all()
        sim.now = 2.0  # idle for one more second
        # One busy core out of two for 1s, idle 1s => 25% mean.
        assert station.utilization_since(t0, area0) == pytest.approx(0.25)

    def test_zero_demand_job_completes(self):
        sim = Simulator()
        station = ProcessorSharingStation(sim, "s")
        done = []
        station.submit(0.0, lambda: done.append(sim.now))
        sim.run_all()
        assert done == [pytest.approx(0.0)]

    def test_counters(self):
        sim = Simulator()
        station = ProcessorSharingStation(sim, "s")
        for _ in range(5):
            station.submit(0.5, lambda: None)
        sim.run_all()
        assert station.completed == 5
        assert station.total_service == pytest.approx(2.5)


@settings(max_examples=25, deadline=None)
@given(demands=st.lists(st.floats(min_value=0.01, max_value=3.0),
                        min_size=1, max_size=8))
def test_ps_conservation(demands):
    """Total busy time equals total service demand (work conservation)."""
    sim = Simulator()
    station = ProcessorSharingStation(sim, "s", cores=1)
    for demand in demands:
        station.submit(demand, lambda: None)
    sim.run_all()
    _t, area = station.area_reading()
    assert area == pytest.approx(sum(demands), rel=1e-6)
    assert station.completed == len(demands)


@settings(max_examples=25, deadline=None)
@given(
    demands=st.lists(st.floats(min_value=0.05, max_value=2.0),
                     min_size=2, max_size=6),
    cores=st.integers(min_value=1, max_value=4),
)
def test_ps_finish_no_earlier_than_ideal(demands, cores):
    """No job finishes before its demand/speed (service bound)."""
    sim = Simulator()
    station = ProcessorSharingStation(sim, "s", cores=cores)
    finishes = {}
    for index, demand in enumerate(demands):
        station.submit(demand,
                       lambda i=index: finishes.setdefault(i, sim.now))
    sim.run_all()
    for index, demand in enumerate(demands):
        assert finishes[index] >= demand - 1e-9


class TestMva:
    def _stations(self):
        return [mva.MvaStation("app", 0.0285), mva.MvaStation("db", 0.00415)]

    def test_low_load_linear(self):
        result = mva.solve(self._stations(), think_time=7.0, users=1)
        assert result.throughput == pytest.approx(1 / (7.0 + 0.03265))
        assert result.response_time == pytest.approx(0.03265)

    def test_bottleneck_identification(self):
        result = mva.solve(self._stations(), think_time=7.0, users=300)
        assert result.bottleneck() == "app"

    def test_saturation_throughput_capped(self):
        result = mva.solve(self._stations(), think_time=7.0, users=1000)
        assert result.throughput <= 1 / 0.0285 + 1e-9
        assert result.throughput == pytest.approx(1 / 0.0285, rel=0.01)

    def test_knee_matches_calibration(self):
        knee = mva.saturation_users(self._stations(), 7.0)
        # One JOnAS app server saturates around 245 users at wr=15%.
        assert 240 <= knee <= 255

    def test_monotone_throughput(self):
        results = mva.sweep(self._stations(), 7.0, range(1, 400, 50))
        throughputs = [r.throughput for r in results.values()]
        assert throughputs == sorted(throughputs)

    def test_utilization_bounded(self):
        result = mva.solve(self._stations(), 7.0, 2000)
        for value in result.station_utilization.values():
            assert value <= 1.0 + 1e-9

    def test_zero_users(self):
        result = mva.solve(self._stations(), 7.0, 0)
        assert result.throughput == 0.0

    def test_duplicate_names_rejected(self):
        with pytest.raises(SimulationError):
            mva.solve([mva.MvaStation("x", 1), mva.MvaStation("x", 2)],
                      1.0, 10)

    def test_multiserver_demand_scaling(self):
        single = mva.solve([mva.MvaStation("db", 0.004)], 7.0, 500)
        double = mva.solve([mva.MvaStation("db", 0.004, servers=2)],
                           7.0, 500)
        assert double.response_time < single.response_time

    def test_asymptotic_response(self):
        r = mva.asymptotic_response(self._stations(), 7.0, 1000)
        assert r == pytest.approx(1000 * 0.0285 - 7.0)


def test_sim_matches_mva_single_station():
    """Cross-validation: closed PS network, simulation vs exact MVA.

    Exponential demands + PS is product-form, so exact MVA applies; the
    simulation must land within a few percent at moderate load.
    """
    from repro.sim.rng import RandomStreams

    users, think, demand = 60, 2.0, 0.05
    sim = Simulator()
    station = ProcessorSharingStation(sim, "s", cores=1)
    rng = RandomStreams(123)
    completed = []

    def issue(user):
        def on_done():
            completed.append(sim.now)
            think_delay = rng.exponential("think", think)
            sim.schedule(think_delay, lambda: issue(user))
        station.submit(rng.exponential("demand", demand), on_done)

    for user in range(users):
        sim.schedule(rng.uniform("start", 0, think), lambda u=user: issue(u))
    horizon = 400.0
    sim.run_until(horizon)
    # Discard the first quarter as warm-up.
    measured = [t for t in completed if t > horizon / 4]
    throughput = len(measured) / (horizon * 3 / 4)
    expected = mva.solve([mva.MvaStation("s", demand)], think, users)
    assert throughput == pytest.approx(expected.throughput, rel=0.05)
    assert not math.isnan(throughput)
